#include "io/netlist_io.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

namespace aplace::io {
namespace {

using netlist::AlignmentKind;
using netlist::Axis;
using netlist::DeviceType;
using netlist::OrderDirection;

// ---- serialization --------------------------------------------------------

/// Shortest decimal form that parses back to exactly the same double, so a
/// serialize -> parse round trip is bit-identical (journal/resume relies on
/// this).
void append_double(std::string& out, double v) {
  std::array<char, 32> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  out.append(buf.data(), res.ptr);
}

std::string num_str(double v) {
  std::string s;
  append_double(s, v);
  return s;
}

const char* type_token(DeviceType t) { return netlist::to_string(t); }

std::optional<DeviceType> type_from_token(std::string_view s) {
  for (const DeviceType t :
       {DeviceType::Nmos, DeviceType::Pmos, DeviceType::Capacitor,
        DeviceType::Resistor, DeviceType::Inductor, DeviceType::Diode,
        DeviceType::Module}) {
    if (s == netlist::to_string(t)) return t;
  }
  return std::nullopt;
}

// ---- tokenization ---------------------------------------------------------

/// One whitespace-separated token and the 1-based column of its first
/// character — parse errors point at it.
struct Token {
  std::string_view text;
  std::size_t col = 0;
};

bool is_space(char ch) {
  return ch == ' ' || ch == '\t' || ch == '\r' || ch == '\v' || ch == '\f';
}

class LineLexer {
 public:
  explicit LineLexer(std::string_view line) : line_(line) {}

  bool next(Token& tok) {
    while (pos_ < line_.size() && is_space(line_[pos_])) ++pos_;
    if (pos_ >= line_.size()) return false;
    const std::size_t start = pos_;
    while (pos_ < line_.size() && !is_space(line_[pos_])) ++pos_;
    tok = {line_.substr(start, pos_ - start), start + 1};
    return true;
  }

  /// 1-based column the lexer stands at (end-of-line diagnostics).
  [[nodiscard]] std::size_t column() const { return pos_ + 1; }

 private:
  std::string_view line_;
  std::size_t pos_ = 0;
};

std::string loc(long line) { return "line " + std::to_string(line); }

Status err_at(long line, std::size_t col, std::string msg) {
  return Status::invalid_input(loc(line) + ", col " + std::to_string(col) +
                               ": " + std::move(msg));
}

Status err_line(long line, std::string msg) {
  return Status::invalid_input(loc(line) + ": " + std::move(msg));
}

/// Line-iteration machinery shared by the two grammars: hands the handler
/// one comment-stripped, non-empty line at a time as (first token, lexer).
class ParserBase {
 protected:
  long line_no_ = 0;

  template <class Fn>
  Status for_each_line(const std::string& text, Fn&& handle) {
    std::size_t begin = 0;
    line_no_ = 0;
    while (begin <= text.size()) {
      std::size_t end = text.find('\n', begin);
      if (end == std::string::npos) end = text.size();
      std::string_view line(text.data() + begin, end - begin);
      ++line_no_;
      const std::size_t hash = line.find('#');
      if (hash != std::string_view::npos) line = line.substr(0, hash);
      LineLexer lex(line);
      Token tok;
      if (lex.next(tok)) {
        if (Status st = handle(tok, lex); !st.ok()) return st;
      }
      if (end == text.size()) break;
      begin = end + 1;
    }
    return {};
  }

  Status expect(LineLexer& lex, const char* what, Token& tok) const {
    if (!lex.next(tok)) {
      return err_at(line_no_, lex.column(),
                    std::string("expected ") + what + ", got end of line");
    }
    return {};
  }

  Status expect_end(LineLexer& lex) const {
    Token extra;
    if (lex.next(extra)) {
      return err_at(line_no_, extra.col,
                    "unexpected trailing token '" + std::string(extra.text) +
                        "'");
    }
    return {};
  }

  Status parse_double(const Token& tok, const char* what, double& out) const {
    const char* first = tok.text.data();
    const char* last = first + tok.text.size();
    double v = 0;
    const auto res = std::from_chars(first, last, v);
    if (res.ec != std::errc{} || res.ptr != last || !std::isfinite(v)) {
      return err_at(line_no_, tok.col,
                    std::string("expected a finite number for ") + what +
                        ", got '" + std::string(tok.text) + "'");
    }
    out = v;
    return {};
  }

  Status parse_flag01(const Token& tok, const char* what, bool& out) const {
    if (tok.text == "0" || tok.text == "1") {
      out = tok.text == "1";
      return {};
    }
    return err_at(line_no_, tok.col,
                  std::string("expected 0 or 1 for ") + what + ", got '" +
                      std::string(tok.text) + "'");
  }
};

// ---- circuit parsing ------------------------------------------------------

class CircuitParser : ParserBase {
 public:
  Result<netlist::Circuit> run(const std::string& text) {
    try {
      Status st = for_each_line(
          text, [&](const Token& tok, LineLexer& lex) {
            return handle_directive(tok, lex);
          });
      if (st.ok() && !named_) {
        st = Status::invalid_input("missing 'circuit <name>' directive");
      }
      if (st.ok()) st = resolve();
      if (!st.ok()) {
        st.add_context("parsing .acirc text");
        return st;
      }
      return std::move(circuit_);
    } catch (const CheckError& e) {
      // Backstop: every Circuit precondition is pre-validated above, so a
      // CheckError here is a parser bug, not bad input.
      return Status::internal(std::string("netlist parser invariant: ") +
                              e.what())
          .add_context("parsing .acirc text");
    }
  }

 private:
  struct PinRef {
    std::string ref;  ///< "device.pin" as written
    std::size_t col = 0;
  };
  struct PendingNet {
    std::string name;
    double weight = 1.0;
    bool critical = false;
    std::vector<PinRef> pins;
    long line = 0;
  };
  struct PendingSym {
    Axis axis = Axis::Vertical;
    std::vector<std::pair<std::string, std::string>> pairs;
    std::vector<std::string> selfs;
    long line = 0;
  };
  struct PendingAlign {
    AlignmentKind kind = AlignmentKind::Bottom;
    std::string a, b;
    long line = 0;
  };
  struct PendingOrder {
    OrderDirection dir = OrderDirection::LeftToRight;
    std::vector<std::string> devices;
    long line = 0;
  };
  struct PendingCentroid {
    std::array<std::string, 4> quad;
    long line = 0;
  };

  Status handle_directive(const Token& tok, LineLexer& lex) {
    if (tok.text == "circuit") return handle_circuit(tok, lex);
    if (!named_) {
      return err_at(line_no_, tok.col,
                    "expected 'circuit <name>' before '" +
                        std::string(tok.text) + "'");
    }
    if (tok.text == "device") return handle_device(lex);
    if (tok.text == "pin") return handle_pin(lex);
    if (tok.text == "net") return handle_net(lex);
    if (tok.text == "sym") return handle_sym(lex);
    if (tok.text == "align") return handle_align(lex);
    if (tok.text == "order") return handle_order(lex);
    if (tok.text == "centroid") return handle_centroid(lex);
    return err_at(line_no_, tok.col,
                  "unknown directive '" + std::string(tok.text) + "'");
  }

  Status handle_circuit(const Token& tok, LineLexer& lex) {
    if (named_) {
      return err_at(line_no_, tok.col,
                    "duplicate 'circuit' directive (first at " +
                        loc(circuit_line_) + ")");
    }
    Token name;
    if (Status st = expect(lex, "circuit name", name); !st.ok()) return st;
    if (Status st = expect_end(lex); !st.ok()) return st;
    circuit_ = netlist::Circuit(std::string(name.text));
    named_ = true;
    circuit_line_ = line_no_;
    return {};
  }

  Status handle_device(LineLexer& lex) {
    Token name, type, wt, ht;
    if (Status st = expect(lex, "device name", name); !st.ok()) return st;
    if (Status st = expect(lex, "device type", type); !st.ok()) return st;
    if (Status st = expect(lex, "device width", wt); !st.ok()) return st;
    if (Status st = expect(lex, "device height", ht); !st.ok()) return st;
    if (Status st = expect_end(lex); !st.ok()) return st;

    if (const auto it = device_line_.find(name.text);
        it != device_line_.end()) {
      return err_at(line_no_, name.col,
                    "duplicate device '" + std::string(name.text) +
                        "' (first defined at " + loc(it->second) + ")");
    }
    const std::optional<DeviceType> dt = type_from_token(type.text);
    if (!dt) {
      return err_at(line_no_, type.col,
                    "unknown device type '" + std::string(type.text) + "'");
    }
    double w = 0, h = 0;
    if (Status st = parse_double(wt, "device width", w); !st.ok()) return st;
    if (Status st = parse_double(ht, "device height", h); !st.ok()) return st;
    if (w <= 0 || h <= 0) {
      return err_at(line_no_, wt.col,
                    "device '" + std::string(name.text) +
                        "' needs a positive footprint, got " + num_str(w) +
                        " x " + num_str(h));
    }
    circuit_.add_device(std::string(name.text), *dt, w, h);
    device_line_.emplace(std::string(name.text), line_no_);
    return {};
  }

  Status handle_pin(LineLexer& lex) {
    Token dev, pin, dxt, dyt;
    if (Status st = expect(lex, "device name", dev); !st.ok()) return st;
    if (Status st = expect(lex, "pin name", pin); !st.ok()) return st;
    if (Status st = expect(lex, "pin x offset", dxt); !st.ok()) return st;
    if (Status st = expect(lex, "pin y offset", dyt); !st.ok()) return st;
    if (Status st = expect_end(lex); !st.ok()) return st;

    const DeviceId id = circuit_.find_device(std::string(dev.text));
    if (!id.valid()) {
      return err_at(line_no_, dev.col,
                    "unknown device '" + std::string(dev.text) + "'");
    }
    const std::string key =
        std::string(dev.text) + "." + std::string(pin.text);
    if (const auto it = pin_line_.find(key); it != pin_line_.end()) {
      return err_at(line_no_, pin.col,
                    "duplicate pin '" + key + "' (first defined at " +
                        loc(it->second) + ")");
    }
    double dx = 0, dy = 0;
    if (Status st = parse_double(dxt, "pin x offset", dx); !st.ok()) return st;
    if (Status st = parse_double(dyt, "pin y offset", dy); !st.ok()) return st;
    const netlist::Device& d = circuit_.device(id);
    if (dx < 0 || dx > d.width || dy < 0 || dy > d.height) {
      return err_at(line_no_, dxt.col,
                    "pin offset (" + num_str(dx) + ", " + num_str(dy) +
                        ") outside device '" + d.name + "' footprint (" +
                        num_str(d.width) + " x " + num_str(d.height) + ")");
    }
    pin_by_name_.emplace(key,
                         circuit_.add_pin(id, std::string(pin.text), {dx, dy}));
    pin_line_.emplace(key, line_no_);
    return {};
  }

  Status handle_net(LineLexer& lex) {
    Token name, wt, crit;
    if (Status st = expect(lex, "net name", name); !st.ok()) return st;
    if (Status st = expect(lex, "net weight", wt); !st.ok()) return st;
    if (Status st = expect(lex, "net critical flag", crit); !st.ok()) return st;

    if (const auto it = net_line_.find(name.text); it != net_line_.end()) {
      return err_at(line_no_, name.col,
                    "duplicate net '" + std::string(name.text) +
                        "' (first defined at " + loc(it->second) + ")");
    }
    PendingNet pn;
    pn.name = std::string(name.text);
    pn.line = line_no_;
    if (Status st = parse_double(wt, "net weight", pn.weight); !st.ok()) {
      return st;
    }
    if (pn.weight <= 0) {
      return err_at(line_no_, wt.col,
                    "net '" + pn.name + "' weight must be positive, got " +
                        num_str(pn.weight));
    }
    if (Status st = parse_flag01(crit, "net critical flag", pn.critical);
        !st.ok()) {
      return st;
    }
    Token ref;
    while (lex.next(ref)) {
      pn.pins.push_back({std::string(ref.text), ref.col});
    }
    if (pn.pins.empty()) {
      return err_at(line_no_, lex.column(),
                    "net '" + pn.name + "' needs at least one pin");
    }
    net_line_.emplace(pn.name, line_no_);
    nets_.push_back(std::move(pn));
    return {};
  }

  Status handle_sym(LineLexer& lex) {
    Token axis;
    if (Status st = expect(lex, "symmetry axis (V or H)", axis); !st.ok()) {
      return st;
    }
    PendingSym ps;
    ps.line = line_no_;
    if (axis.text == "V") {
      ps.axis = Axis::Vertical;
    } else if (axis.text == "H") {
      ps.axis = Axis::Horizontal;
    } else {
      return err_at(line_no_, axis.col,
                    "expected symmetry axis V or H, got '" +
                        std::string(axis.text) + "'");
    }
    Token kw;
    while (lex.next(kw)) {
      if (kw.text == "pair") {
        Token a, b;
        if (Status st = expect(lex, "first device of pair", a); !st.ok()) {
          return st;
        }
        if (Status st = expect(lex, "second device of pair", b); !st.ok()) {
          return st;
        }
        ps.pairs.emplace_back(std::string(a.text), std::string(b.text));
      } else if (kw.text == "self") {
        Token d;
        if (Status st = expect(lex, "self-symmetric device", d); !st.ok()) {
          return st;
        }
        ps.selfs.emplace_back(d.text);
      } else {
        return err_at(line_no_, kw.col,
                      "expected 'pair' or 'self', got '" +
                          std::string(kw.text) + "'");
      }
    }
    if (ps.pairs.empty() && ps.selfs.empty()) {
      return err_at(line_no_, lex.column(),
                    "symmetry group needs at least one pair or self entry");
    }
    syms_.push_back(std::move(ps));
    return {};
  }

  Status handle_align(LineLexer& lex) {
    Token kind, a, b;
    if (Status st = expect(lex, "alignment kind", kind); !st.ok()) return st;
    if (Status st = expect(lex, "first device", a); !st.ok()) return st;
    if (Status st = expect(lex, "second device", b); !st.ok()) return st;
    if (Status st = expect_end(lex); !st.ok()) return st;

    PendingAlign pa;
    pa.line = line_no_;
    if (kind.text == "bottom") {
      pa.kind = AlignmentKind::Bottom;
    } else if (kind.text == "vcenter") {
      pa.kind = AlignmentKind::VerticalCenter;
    } else if (kind.text == "hcenter") {
      pa.kind = AlignmentKind::HorizontalCenter;
    } else {
      return err_at(line_no_, kind.col,
                    "expected alignment kind bottom, vcenter or hcenter, "
                    "got '" +
                        std::string(kind.text) + "'");
    }
    if (a.text == b.text) {
      return err_at(line_no_, b.col,
                    "alignment of device '" + std::string(a.text) +
                        "' with itself");
    }
    pa.a = std::string(a.text);
    pa.b = std::string(b.text);
    aligns_.push_back(std::move(pa));
    return {};
  }

  Status handle_order(LineLexer& lex) {
    Token dir;
    if (Status st = expect(lex, "order direction (lr or bt)", dir); !st.ok()) {
      return st;
    }
    PendingOrder po;
    po.line = line_no_;
    if (dir.text == "lr") {
      po.dir = OrderDirection::LeftToRight;
    } else if (dir.text == "bt") {
      po.dir = OrderDirection::BottomToTop;
    } else {
      return err_at(line_no_, dir.col,
                    "expected order direction lr or bt, got '" +
                        std::string(dir.text) + "'");
    }
    Token d;
    while (lex.next(d)) {
      for (const std::string& prev : po.devices) {
        if (prev == d.text) {
          return err_at(line_no_, d.col,
                        "device '" + std::string(d.text) +
                            "' listed twice in one ordering");
        }
      }
      po.devices.emplace_back(d.text);
    }
    if (po.devices.size() < 2) {
      return err_at(line_no_, lex.column(),
                    "ordering needs at least two devices");
    }
    orders_.push_back(std::move(po));
    return {};
  }

  Status handle_centroid(LineLexer& lex) {
    PendingCentroid pc;
    pc.line = line_no_;
    static constexpr std::array<const char*, 4> kWhat = {
        "first diagonal device", "first diagonal partner",
        "second diagonal device", "second diagonal partner"};
    std::array<Token, 4> toks;
    for (std::size_t i = 0; i < 4; ++i) {
      if (Status st = expect(lex, kWhat[i], toks[i]); !st.ok()) return st;
      for (std::size_t j = 0; j < i; ++j) {
        if (toks[j].text == toks[i].text) {
          return err_at(line_no_, toks[i].col,
                        "common-centroid quad needs four distinct devices; '" +
                            std::string(toks[i].text) + "' repeats");
        }
      }
      pc.quad[i] = std::string(toks[i].text);
    }
    if (Status st = expect_end(lex); !st.ok()) return st;
    centroids_.push_back(std::move(pc));
    return {};
  }

  // -- stage 2: resolve names, attach constraints, finalize -----------------

  Status find_dev(const std::string& name, long line, const char* ctx,
                  DeviceId& out) const {
    out = circuit_.find_device(name);
    if (!out.valid()) {
      return err_line(line, std::string(ctx) + ": unknown device '" + name +
                                "'");
    }
    return {};
  }

  Status resolve() {
    if (circuit_.num_devices() == 0) {
      return Status::invalid_input("circuit '" + circuit_.name() +
                                   "' has no devices");
    }

    // Nets: every pin reference must name a declared pin, and a pin sits on
    // at most one net.
    std::map<std::string, std::pair<std::string, long>, std::less<>>
        connected;  // "dev.pin" -> (net, line)
    for (PendingNet& pn : nets_) {
      std::vector<PinId> pins;
      pins.reserve(pn.pins.size());
      for (const PinRef& pr : pn.pins) {
        const auto it = pin_by_name_.find(pr.ref);
        if (it == pin_by_name_.end()) {
          return err_at(pn.line, pr.col,
                        "net '" + pn.name + "': unknown pin '" + pr.ref +
                            "'");
        }
        const auto [cit, fresh] =
            connected.emplace(pr.ref, std::make_pair(pn.name, pn.line));
        if (!fresh) {
          return err_at(pn.line, pr.col,
                        "pin '" + pr.ref + "' already on net '" +
                            cit->second.first + "' (" +
                            loc(cit->second.second) + ")");
        }
        pins.push_back(it->second);
      }
      circuit_.add_net(std::move(pn.name), std::move(pins), pn.weight,
                       pn.critical);
    }
    // Declared-but-unconnected pins would fail finalize(); report the pin's
    // own line instead.
    for (const auto& [key, line] : pin_line_) {
      if (!connected.contains(key)) {
        return err_line(line,
                        "pin '" + key + "' is not connected to any net");
      }
    }

    // Symmetry groups: membership is exclusive and mirrored pairs need
    // matching footprints.
    std::map<std::string, long, std::less<>> in_group;
    for (const PendingSym& ps : syms_) {
      netlist::SymmetryGroup g;
      g.axis = ps.axis;
      auto claim = [&](const std::string& name) -> Status {
        const auto [it, fresh] = in_group.emplace(name, ps.line);
        if (!fresh) {
          return err_line(ps.line, "device '" + name +
                                       "' in two symmetry groups (also " +
                                       loc(it->second) + ")");
        }
        return {};
      };
      for (const auto& [a, b] : ps.pairs) {
        if (a == b) {
          return err_line(ps.line,
                          "symmetry pair of device '" + a + "' with itself");
        }
        DeviceId ia, ib;
        if (Status st = find_dev(a, ps.line, "sym", ia); !st.ok()) return st;
        if (Status st = find_dev(b, ps.line, "sym", ib); !st.ok()) return st;
        if (Status st = claim(a); !st.ok()) return st;
        if (Status st = claim(b); !st.ok()) return st;
        const netlist::Device& da = circuit_.device(ia);
        const netlist::Device& db = circuit_.device(ib);
        if (da.width != db.width || da.height != db.height) {
          return err_line(ps.line,
                          "symmetry pair '" + a + "'/'" + b +
                              "' footprint mismatch (" + num_str(da.width) +
                              " x " + num_str(da.height) + " vs " +
                              num_str(db.width) + " x " + num_str(db.height) +
                              ")");
        }
        g.pairs.emplace_back(ia, ib);
      }
      for (const std::string& d : ps.selfs) {
        DeviceId id;
        if (Status st = find_dev(d, ps.line, "sym", id); !st.ok()) return st;
        if (Status st = claim(d); !st.ok()) return st;
        g.self_symmetric.push_back(id);
      }
      circuit_.add_symmetry_group(std::move(g));
    }

    for (const PendingAlign& pa : aligns_) {
      AlignmentKind kind = pa.kind;
      DeviceId a, b;
      if (Status st = find_dev(pa.a, pa.line, "align", a); !st.ok()) return st;
      if (Status st = find_dev(pa.b, pa.line, "align", b); !st.ok()) return st;
      circuit_.add_alignment({kind, a, b});
    }

    for (const PendingOrder& po : orders_) {
      netlist::OrderingConstraint oc;
      oc.direction = po.dir;
      for (const std::string& d : po.devices) {
        DeviceId id;
        if (Status st = find_dev(d, po.line, "order", id); !st.ok()) return st;
        oc.devices.push_back(id);
      }
      circuit_.add_ordering(std::move(oc));
    }

    for (const PendingCentroid& pc : centroids_) {
      std::array<DeviceId, 4> q;
      for (std::size_t i = 0; i < 4; ++i) {
        if (Status st = find_dev(pc.quad[i], pc.line, "centroid", q[i]);
            !st.ok()) {
          return st;
        }
      }
      const netlist::Device& a1 = circuit_.device(q[0]);
      const netlist::Device& a2 = circuit_.device(q[1]);
      const netlist::Device& b1 = circuit_.device(q[2]);
      const netlist::Device& b2 = circuit_.device(q[3]);
      if (a1.width != a2.width || a1.height != a2.height ||
          b1.width != b2.width || b1.height != b2.height) {
        return err_line(pc.line,
                        "common centroid: diagonal footprint mismatch");
      }
      circuit_.add_common_centroid({q[0], q[1], q[2], q[3]});
    }

    try {
      circuit_.finalize();
    } catch (const CheckError& e) {
      // Every finalize() precondition is pre-checked above with a better
      // message; this converts anything missed instead of throwing.
      return Status::invalid_input(std::string("circuit validation: ") +
                                   e.what());
    }
    return {};
  }

  netlist::Circuit circuit_;
  bool named_ = false;
  long circuit_line_ = 0;
  std::map<std::string, long, std::less<>> device_line_;
  std::map<std::string, long, std::less<>> net_line_;
  std::map<std::string, long, std::less<>> pin_line_;  ///< "dev.pin" -> line
  std::map<std::string, PinId, std::less<>> pin_by_name_;
  std::vector<PendingNet> nets_;
  std::vector<PendingSym> syms_;
  std::vector<PendingAlign> aligns_;
  std::vector<PendingOrder> orders_;
  std::vector<PendingCentroid> centroids_;
};

// ---- placement parsing ----------------------------------------------------

class PlacementParser : ParserBase {
 public:
  explicit PlacementParser(const netlist::Circuit& circuit)
      : circuit_(&circuit) {}

  Result<netlist::Placement> run(const std::string& text) {
    netlist::Placement pl(*circuit_);
    Status st = for_each_line(text, [&](const Token& tok, LineLexer& lex) {
      return handle_directive(pl, tok, lex);
    });
    if (st.ok() && place_line_.size() != circuit_->num_devices()) {
      std::string missing;
      for (const netlist::Device& d : circuit_->devices()) {
        if (!place_line_.contains(d.name)) {
          missing = d.name;
          break;
        }
      }
      st = Status::invalid_input(
          "placement covers " + std::to_string(place_line_.size()) + " of " +
          std::to_string(circuit_->num_devices()) + " devices; missing '" +
          missing + "'");
    }
    if (!st.ok()) {
      st.add_context("parsing .aplc text for circuit '" + circuit_->name() +
                     "'");
      return st;
    }
    return pl;
  }

 private:
  Status handle_directive(netlist::Placement& pl, const Token& tok,
                          LineLexer& lex) {
    if (tok.text == "placement") return handle_header(tok, lex);
    if (tok.text == "place") return handle_place(pl, lex);
    return err_at(line_no_, tok.col,
                  "unknown directive '" + std::string(tok.text) + "'");
  }

  Status handle_header(const Token& tok, LineLexer& lex) {
    if (header_line_ != 0) {
      return err_at(line_no_, tok.col,
                    "duplicate 'placement' directive (first at " +
                        loc(header_line_) + ")");
    }
    header_line_ = line_no_;
    Token name;
    if (Status st = expect(lex, "circuit name", name); !st.ok()) return st;
    if (Status st = expect_end(lex); !st.ok()) return st;
    if (name.text != circuit_->name()) {
      return err_at(line_no_, name.col,
                    "placement is for circuit '" + std::string(name.text) +
                        "', expected '" + circuit_->name() + "'");
    }
    return {};
  }

  Status handle_place(netlist::Placement& pl, LineLexer& lex) {
    Token name, xt, yt;
    if (Status st = expect(lex, "device name", name); !st.ok()) return st;
    if (Status st = expect(lex, "x coordinate", xt); !st.ok()) return st;
    if (Status st = expect(lex, "y coordinate", yt); !st.ok()) return st;

    const DeviceId id = circuit_->find_device(std::string(name.text));
    if (!id.valid()) {
      return err_at(line_no_, name.col,
                    "unknown device '" + std::string(name.text) + "'");
    }
    const auto [it, fresh] =
        place_line_.emplace(std::string(name.text), line_no_);
    if (!fresh) {
      return err_at(line_no_, name.col,
                    "duplicate 'place' for device '" + std::string(name.text) +
                        "' (first at " + loc(it->second) + ")");
    }
    double x = 0, y = 0;
    if (Status st = parse_double(xt, "x coordinate", x); !st.ok()) return st;
    if (Status st = parse_double(yt, "y coordinate", y); !st.ok()) return st;
    geom::Orientation o;
    Token flag;
    while (lex.next(flag)) {
      if (flag.text == "FX") {
        o.flip_x = true;
      } else if (flag.text == "FY") {
        o.flip_y = true;
      } else {
        return err_at(line_no_, flag.col,
                      "expected flag FX or FY, got '" +
                          std::string(flag.text) + "'");
      }
    }
    pl.set_position(id, {x, y});
    pl.set_orientation(id, o);
    return {};
  }

  const netlist::Circuit* circuit_;
  long header_line_ = 0;
  std::map<std::string, long, std::less<>> place_line_;
};

// ---- files ----------------------------------------------------------------

Status read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::invalid_input("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) {
    return Status::invalid_input("read from '" + path + "' failed");
  }
  out = os.str();
  return {};
}

Status write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    return Status::invalid_input("cannot open '" + path + "' for writing");
  }
  out << text;
  out.flush();
  if (!out.good()) {
    return Status::invalid_input("write to '" + path + "' failed");
  }
  return {};
}

}  // namespace

std::string circuit_to_text(const netlist::Circuit& c) {
  std::string os;
  os += "circuit ";
  os += c.name();
  os += "\n";
  for (const netlist::Device& d : c.devices()) {
    os += "device ";
    os += d.name;
    os += ' ';
    os += type_token(d.type);
    os += ' ';
    append_double(os, d.width);
    os += ' ';
    append_double(os, d.height);
    os += "\n";
  }
  for (const netlist::Pin& p : c.pins()) {
    os += "pin ";
    os += c.device(p.device).name;
    os += ' ';
    os += p.name;
    os += ' ';
    append_double(os, p.offset.x);
    os += ' ';
    append_double(os, p.offset.y);
    os += "\n";
  }
  for (const netlist::Net& net : c.nets()) {
    os += "net ";
    os += net.name;
    os += ' ';
    append_double(os, net.weight);
    os += ' ';
    os += net.critical ? '1' : '0';
    for (PinId pid : net.pins) {
      const netlist::Pin& p = c.pin(pid);
      os += ' ';
      os += c.device(p.device).name;
      os += '.';
      os += p.name;
    }
    os += "\n";
  }
  for (const netlist::SymmetryGroup& g : c.constraints().symmetry_groups) {
    os += "sym ";
    os += g.axis == Axis::Vertical ? 'V' : 'H';
    for (auto [a, b] : g.pairs) {
      os += " pair ";
      os += c.device(a).name;
      os += ' ';
      os += c.device(b).name;
    }
    for (DeviceId d : g.self_symmetric) {
      os += " self ";
      os += c.device(d).name;
    }
    os += "\n";
  }
  for (const netlist::AlignmentPair& a : c.constraints().alignments) {
    const char* kind = a.kind == AlignmentKind::Bottom ? "bottom"
                       : a.kind == AlignmentKind::VerticalCenter ? "vcenter"
                                                                 : "hcenter";
    os += "align ";
    os += kind;
    os += ' ';
    os += c.device(a.a).name;
    os += ' ';
    os += c.device(a.b).name;
    os += "\n";
  }
  for (const netlist::OrderingConstraint& o : c.constraints().orderings) {
    os += "order ";
    os += o.direction == OrderDirection::LeftToRight ? "lr" : "bt";
    for (DeviceId d : o.devices) {
      os += ' ';
      os += c.device(d).name;
    }
    os += "\n";
  }
  for (const netlist::CommonCentroidQuad& q :
       c.constraints().common_centroids) {
    os += "centroid ";
    os += c.device(q.a1).name;
    os += ' ';
    os += c.device(q.a2).name;
    os += ' ';
    os += c.device(q.b1).name;
    os += ' ';
    os += c.device(q.b2).name;
    os += "\n";
  }
  return os;
}

Result<netlist::Circuit> circuit_from_text(const std::string& text) {
  return CircuitParser().run(text);
}

std::string placement_to_text(const netlist::Placement& pl) {
  const netlist::Circuit& c = pl.circuit();
  std::string os;
  os += "placement ";
  os += c.name();
  os += "\n";
  for (std::size_t i = 0; i < c.num_devices(); ++i) {
    const DeviceId id{i};
    const geom::Point p = pl.position(id);
    const geom::Orientation o = pl.orientation(id);
    os += "place ";
    os += c.device(id).name;
    os += ' ';
    append_double(os, p.x);
    os += ' ';
    append_double(os, p.y);
    if (o.flip_x) os += " FX";
    if (o.flip_y) os += " FY";
    os += "\n";
  }
  return os;
}

Result<netlist::Placement> placement_from_text(const netlist::Circuit& circuit,
                                               const std::string& text) {
  return PlacementParser(circuit).run(text);
}

Status write_circuit(const netlist::Circuit& circuit, const std::string& path) {
  return write_file(path, circuit_to_text(circuit));
}

Result<netlist::Circuit> read_circuit(const std::string& path) {
  std::string text;
  if (Status st = read_file(path, text); !st.ok()) return st;
  Result<netlist::Circuit> parsed = circuit_from_text(text);
  if (!parsed.ok()) {
    Status st = parsed.status();
    st.add_context("file '" + path + "'");
    return st;
  }
  return parsed;
}

Status write_placement(const netlist::Placement& placement,
                       const std::string& path) {
  return write_file(path, placement_to_text(placement));
}

Result<netlist::Placement> read_placement(const netlist::Circuit& circuit,
                                          const std::string& path) {
  std::string text;
  if (Status st = read_file(path, text); !st.ok()) return st;
  Result<netlist::Placement> parsed = placement_from_text(circuit, text);
  if (!parsed.ok()) {
    Status st = parsed.status();
    st.add_context("file '" + path + "'");
    return st;
  }
  return parsed;
}

}  // namespace aplace::io
