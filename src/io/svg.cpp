#include "io/svg.hpp"

#include <fstream>
#include <sstream>

#include "netlist/evaluator.hpp"

namespace aplace::io {
namespace {

const char* fill_for(netlist::DeviceType t) {
  switch (t) {
    case netlist::DeviceType::Nmos: return "#7eb5e8";
    case netlist::DeviceType::Pmos: return "#e8a97e";
    case netlist::DeviceType::Capacitor: return "#9fd89f";
    case netlist::DeviceType::Resistor: return "#d8c77e";
    case netlist::DeviceType::Inductor: return "#c39fd8";
    case netlist::DeviceType::Diode: return "#d89f9f";
    case netlist::DeviceType::Module: return "#c0c8d0";
  }
  return "#cccccc";
}

}  // namespace

std::string to_svg(const netlist::Placement& placement, SvgOptions opt) {
  const netlist::Circuit& c = placement.circuit();
  const geom::Rect bb = placement.bounding_box().inflated(opt.margin);
  const double s = opt.scale;
  const double w = bb.width() * s;
  const double h = bb.height() * s;

  // SVG y grows downward; flip so the layout reads like a floorplan.
  auto X = [&](double x) { return (x - bb.xlo()) * s; };
  auto Y = [&](double y) { return h - (y - bb.ylo()) * s; };

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w
     << "\" height=\"" << h << "\" viewBox=\"0 0 " << w << ' ' << h
     << "\">\n";
  os << "<rect x=\"0\" y=\"0\" width=\"" << w << "\" height=\"" << h
     << "\" fill=\"#fcfcf8\"/>\n";

  // Layout bounding box.
  const geom::Rect layout = placement.bounding_box();
  os << "<rect x=\"" << X(layout.xlo()) << "\" y=\"" << Y(layout.yhi())
     << "\" width=\"" << layout.width() * s << "\" height=\""
     << layout.height() * s
     << "\" fill=\"none\" stroke=\"#888\" stroke-width=\"1\" "
        "stroke-dasharray=\"6 3\"/>\n";

  // Devices.
  for (std::size_t i = 0; i < c.num_devices(); ++i) {
    const DeviceId id{i};
    const geom::Rect r = placement.device_rect(id);
    const netlist::Device& d = c.device(id);
    os << "<rect x=\"" << X(r.xlo()) << "\" y=\"" << Y(r.yhi())
       << "\" width=\"" << r.width() * s << "\" height=\"" << r.height() * s
       << "\" fill=\"" << fill_for(d.type)
       << "\" stroke=\"#334\" stroke-width=\"1\"/>\n";
    if (opt.draw_labels) {
      os << "<text x=\"" << X(r.center().x) << "\" y=\""
         << Y(r.center().y) + 3
         << "\" font-size=\"" << std::max(8.0, 0.28 * s)
         << "\" text-anchor=\"middle\" font-family=\"monospace\" "
            "fill=\"#223\">"
         << d.name << "</text>\n";
    }
  }

  // Nets: light star from centroid to each pin.
  if (opt.draw_nets) {
    for (std::size_t e = 0; e < c.num_nets(); ++e) {
      const netlist::Net& net = c.net(NetId{e});
      if (net.weight < 0.5) continue;  // skip supply rails for readability
      geom::Point centroid{0, 0};
      for (PinId p : net.pins) centroid += placement.pin_position(p);
      centroid *= 1.0 / static_cast<double>(net.pins.size());
      const char* color = net.critical ? "#cc3344" : "#8899bb";
      for (PinId p : net.pins) {
        const geom::Point q = placement.pin_position(p);
        os << "<line x1=\"" << X(centroid.x) << "\" y1=\"" << Y(centroid.y)
           << "\" x2=\"" << X(q.x) << "\" y2=\"" << Y(q.y) << "\" stroke=\""
           << color << "\" stroke-width=\"0.8\" stroke-opacity=\"0.55\"/>\n";
      }
    }
  }

  // Pins.
  if (opt.draw_pins) {
    for (std::size_t p = 0; p < c.num_pins(); ++p) {
      const geom::Point q = placement.pin_position(PinId{p});
      os << "<circle cx=\"" << X(q.x) << "\" cy=\"" << Y(q.y) << "\" r=\""
         << 0.08 * s << "\" fill=\"#223\"/>\n";
    }
  }

  // Symmetry axes (at the evaluator's best-fit axis position).
  if (opt.draw_symmetry && !c.constraints().symmetry_groups.empty()) {
    const netlist::Evaluator ev(c);
    for (const netlist::SymmetryGroup& g : c.constraints().symmetry_groups) {
      const double m = ev.best_axis(placement, g);
      if (g.axis == netlist::Axis::Vertical) {
        os << "<line x1=\"" << X(m) << "\" y1=\"0\" x2=\"" << X(m)
           << "\" y2=\"" << h
           << "\" stroke=\"#44aa66\" stroke-width=\"1\" "
              "stroke-dasharray=\"2 4\"/>\n";
      } else {
        os << "<line x1=\"0\" y1=\"" << Y(m) << "\" x2=\"" << w
           << "\" y2=\"" << Y(m)
           << "\" stroke=\"#44aa66\" stroke-width=\"1\" "
              "stroke-dasharray=\"2 4\"/>\n";
      }
    }
  }

  os << "</svg>\n";
  return os.str();
}

void write_svg(const netlist::Placement& placement, const std::string& path,
               SvgOptions options) {
  std::ofstream out(path);
  APLACE_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << to_svg(placement, options);
  APLACE_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

}  // namespace aplace::io
