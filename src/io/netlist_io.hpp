#pragma once
// Plain-text interchange formats:
//
//  * circuit files (.acirc) — devices, pins, nets and constraint groups, a
//    minimal analog-netlist format so circuits can live outside C++;
//  * placement files (.aplc) — device centers + orientations keyed by name,
//    round-trippable against a circuit.
//
// Grammar (one directive per line, '#' comments):
//
//   circuit <name>
//   device <name> <type> <w> <h>
//   pin <device> <pin-name> <dx> <dy>
//   net <name> <weight> <critical 0|1> <device.pin> [<device.pin> ...]
//   sym <V|H> pair <a> <b> [pair <a> <b> ...] [self <d> ...]
//   align <bottom|vcenter|hcenter> <a> <b>
//   order <lr|bt> <d1> <d2> ...
//   centroid <a1> <a2> <b1> <b2>
//
//   placement <circuit-name>
//   place <device> <x> <y> [FX][FY]
//
// Hardened parsing: the parsers never throw on malformed input. They return
// Result<T> carrying an InvalidInput Status whose message pinpoints the
// offending line (and column where meaningful) — including duplicate
// definitions, which name both the duplicate and the first definition.
// Doubles are serialized with the shortest representation that round-trips
// exactly (std::to_chars), so serialize -> parse is bit-identical.

#include <string>

#include "base/status.hpp"
#include "netlist/circuit.hpp"
#include "netlist/placement.hpp"

namespace aplace::io {

/// Serialize a finalized circuit to the .acirc text format.
[[nodiscard]] std::string circuit_to_text(const netlist::Circuit& circuit);

/// Parse a circuit from .acirc text. Malformed input yields an InvalidInput
/// status with line/column context; this function does not throw.
[[nodiscard]] Result<netlist::Circuit> circuit_from_text(
    const std::string& text);

/// Serialize a placement to the .aplc text format.
[[nodiscard]] std::string placement_to_text(
    const netlist::Placement& placement);

/// Parse a placement (against its circuit) from .aplc text. Malformed or
/// incomplete input yields an InvalidInput status; does not throw.
[[nodiscard]] Result<netlist::Placement> placement_from_text(
    const netlist::Circuit& circuit, const std::string& text);

// File conveniences. IO failures come back as InvalidInput statuses naming
// the path; nothing is thrown.
[[nodiscard]] Status write_circuit(const netlist::Circuit& circuit,
                                   const std::string& path);
[[nodiscard]] Result<netlist::Circuit> read_circuit(const std::string& path);
[[nodiscard]] Status write_placement(const netlist::Placement& placement,
                                     const std::string& path);
[[nodiscard]] Result<netlist::Placement> read_placement(
    const netlist::Circuit& circuit, const std::string& path);

}  // namespace aplace::io
