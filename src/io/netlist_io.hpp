#pragma once
// Plain-text interchange formats:
//
//  * circuit files (.acirc) — devices, pins, nets and constraint groups, a
//    minimal analog-netlist format so circuits can live outside C++;
//  * placement files (.aplc) — device centers + orientations keyed by name,
//    round-trippable against a circuit.
//
// Grammar (one directive per line, '#' comments):
//
//   circuit <name>
//   device <name> <type> <w> <h>
//   pin <device> <pin-name> <dx> <dy>
//   net <name> <weight> <critical 0|1> <device.pin> <device.pin> ...
//   sym <V|H> pair <a> <b> [pair <a> <b> ...] [self <d> ...]
//   align <bottom|vcenter|hcenter> <a> <b>
//   order <lr|bt> <d1> <d2> ...
//
//   placement <circuit-name>
//   place <device> <x> <y> [FX][FY]

#include <iosfwd>
#include <string>

#include "netlist/circuit.hpp"
#include "netlist/placement.hpp"

namespace aplace::io {

/// Serialize a finalized circuit to the .acirc text format.
[[nodiscard]] std::string circuit_to_text(const netlist::Circuit& circuit);

/// Parse a circuit from .acirc text. Throws CheckError on malformed input.
[[nodiscard]] netlist::Circuit circuit_from_text(const std::string& text);

/// Serialize a placement to the .aplc text format.
[[nodiscard]] std::string placement_to_text(
    const netlist::Placement& placement);

/// Parse a placement (against its circuit) from .aplc text.
[[nodiscard]] netlist::Placement placement_from_text(
    const netlist::Circuit& circuit, const std::string& text);

// File conveniences (throw CheckError on IO errors).
void write_circuit(const netlist::Circuit& circuit, const std::string& path);
[[nodiscard]] netlist::Circuit read_circuit(const std::string& path);
void write_placement(const netlist::Placement& placement,
                     const std::string& path);
[[nodiscard]] netlist::Placement read_placement(
    const netlist::Circuit& circuit, const std::string& path);

}  // namespace aplace::io
