#include "core/compile_cache.hpp"

#include <chrono>

#include "obs/metrics.hpp"

namespace aplace::core {
namespace {

/// Compile one snapshot and publish its cost (the miss counter doubles as a
/// compile counter: every compile is a miss somewhere).
std::shared_ptr<const netlist::CompiledCircuit> compile_timed(
    const netlist::Circuit& circuit) {
  const auto t0 = std::chrono::steady_clock::now();
  auto snap = std::make_shared<const netlist::CompiledCircuit>(circuit);
  if (obs::enabled()) {
    obs::counter("compile/cache_miss").inc();
    obs::histogram("compile/seconds")
        .record(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count());
  }
  return snap;
}

}  // namespace

std::shared_ptr<const netlist::CompiledCircuit> CompileCache::get_or_compile(
    const netlist::Circuit& circuit) {
  const std::uint64_t key = circuit.digest();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_digest_.find(key);
    if (it != by_digest_.end() && &it->second->circuit() == &circuit) {
      obs::counter("compile/cache_hit").inc();
      return it->second;
    }
  }
  // Compile outside the lock: two jobs first-touching the same circuit may
  // both compile it, but neither blocks the other and the emplace below
  // keeps whichever snapshot landed first (they are bit-identical).
  std::shared_ptr<const netlist::CompiledCircuit> snap = compile_timed(circuit);
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = by_digest_.emplace(key, snap);
  if (!inserted && &it->second->circuit() == &circuit) return it->second;
  return snap;  // fresh insert, or a collision with a different object
}

std::size_t CompileCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return by_digest_.size();
}

std::shared_ptr<const netlist::CompiledCircuit> compile_or_fetch(
    const std::shared_ptr<CompileCache>& cache,
    const netlist::Circuit& circuit) {
  if (cache != nullptr) return cache->get_or_compile(circuit);
  return compile_timed(circuit);
}

}  // namespace aplace::core
