#pragma once
// Performance-driven placement (paper Sec. V): GNN-guided variants of all
// three methods.
//
//   * PerfContext    — per-circuit bundle: surrogate performance model,
//                      circuit graph, GNN trained on generated placement
//                      samples (label 1 = FOM below threshold).
//   * run_eplace_ap  — ePlace-AP: ePlace-A GP with alpha * dPhi/dv descent
//                      through the GNN (gradient back-propagated to device
//                      coordinates), same ILP detailed placement.
//   * run_prior_work_perf — the paper's Perf* extension of [11]: same GNN
//                      term added to the CG objective.
//   * run_sa_perf    — performance-driven SA [19]: Phi inference added to
//                      the annealing cost.
//   * evaluate_routed — route the placement, extract parasitics, run the
//                      surrogate "SPICE" and report metric values + FOM.

#include <memory>

#include "core/flow.hpp"
#include "gnn/graph.hpp"
#include "gnn/model.hpp"
#include "gnn/trainer.hpp"
#include "perf/model.hpp"
#include "route/router.hpp"

namespace aplace::core {

struct DatasetOptions {
  int random_samples = 700;   ///< random sequence-pair packings
  int optimized_samples = 24; ///< short-SA placements (good region coverage)
  /// Jittered copies of an analytical placement: densifies the dataset in
  /// the neighborhood the GNN-guided placers actually explore.
  int analytic_samples = 48;
  long sa_moves_per_sample = 1500;
  std::uint64_t seed = 11;
};

struct PerfContext {
  /// One compiled snapshot shared by the model, the graph and the router.
  std::shared_ptr<const netlist::CompiledCircuit> compiled;
  perf::PerformanceModel model;
  gnn::CircuitGraph graph;
  gnn::GnnModel net;
  gnn::TrainReport training;
  double label_threshold = 0.0;  ///< FOM boundary used for dataset labels

  PerfContext(std::shared_ptr<const netlist::CompiledCircuit> cc,
              perf::PerformanceModel m, gnn::CircuitGraph g)
      : compiled(std::move(cc)), model(std::move(m)), graph(std::move(g)) {}
};

/// Generate a labeled dataset, train the GNN, return the ready context.
[[nodiscard]] std::unique_ptr<PerfContext> build_perf_context(
    const netlist::Circuit& circuit, const perf::PerformanceSpec& spec,
    DatasetOptions opts = {}, gnn::TrainOptions train_opts = {});

struct PerfFlowResult {
  FlowResult flow;
  perf::PerformanceResult perf;  ///< routed + surrogate-simulated metrics
};

[[nodiscard]] PerfFlowResult run_eplace_ap(const netlist::Circuit& circuit,
                                           PerfContext& ctx,
                                           EPlaceAOptions opts = {});
[[nodiscard]] PerfFlowResult run_prior_work_perf(
    const netlist::Circuit& circuit, PerfContext& ctx,
    PriorWorkOptions opts = {});
[[nodiscard]] PerfFlowResult run_sa_perf(const netlist::Circuit& circuit,
                                         PerfContext& ctx,
                                         SaFlowOptions opts = {},
                                         double alpha = 1.0);

/// Route + surrogate-simulate an existing placement.
[[nodiscard]] perf::PerformanceResult evaluate_routed(
    const PerfContext& ctx, const netlist::Placement& placement);

/// GNN failure probability of a placement (inference only).
[[nodiscard]] double gnn_phi(const PerfContext& ctx,
                             const netlist::Placement& placement);

}  // namespace aplace::core
