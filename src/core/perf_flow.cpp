#include "core/perf_flow.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "gnn/phi_term.hpp"
#include "numeric/rng.hpp"
#include "sa/annealer.hpp"

namespace aplace::core {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<double> positions_of(const netlist::Placement& pl) {
  const std::size_t n = pl.circuit().num_devices();
  std::vector<double> v(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Point p = pl.position(DeviceId{i});
    v[i] = p.x;
    v[n + i] = p.y;
  }
  return v;
}

double coord_scale_of(const netlist::Circuit& c) {
  return std::sqrt(c.total_device_area() / 0.5);
}

}  // namespace

std::unique_ptr<PerfContext> build_perf_context(
    const netlist::Circuit& circuit, const perf::PerformanceSpec& spec,
    DatasetOptions opts, gnn::TrainOptions train_opts) {
  auto compiled = std::make_shared<const netlist::CompiledCircuit>(circuit);
  auto ctx = std::make_unique<PerfContext>(
      compiled, perf::PerformanceModel(compiled, spec),
      gnn::CircuitGraph(compiled, coord_scale_of(circuit)));

  // --- sample placements ------------------------------------------------------
  numeric::Rng rng(opts.seed);
  std::vector<netlist::Placement> placements;
  placements.reserve(
      static_cast<std::size_t>(opts.random_samples + opts.optimized_samples));
  {
    sa::SaOptions sopts;
    sopts.seed = opts.seed;
    sa::SaPlacer sampler(circuit, sopts);
    for (int k = 0; k < opts.random_samples; ++k) {
      placements.push_back(sampler.sample_random(rng));
    }
  }
  for (int k = 0; k < opts.optimized_samples; ++k) {
    sa::SaOptions sopts;
    sopts.seed = opts.seed + 1000 + static_cast<std::uint64_t>(k);
    sopts.max_moves = opts.sa_moves_per_sample;
    sopts.area_weight = 0.25 + 0.5 * rng.uniform();
    sa::SaPlacer sap(circuit, sopts);
    placements.push_back(sap.place().placement);
  }
  if (opts.analytic_samples > 0) {
    // Neighborhood of a good analytical placement: jittered copies teach
    // the model the local landscape where ePlace-AP descends.
    EPlaceAOptions eopts;
    eopts.candidates = 1;
    eopts.gp.num_starts = 1;
    const FlowResult base = run_eplace_a(circuit, eopts);
    const std::size_t n = circuit.num_devices();
    for (int k = 0; k < opts.analytic_samples; ++k) {
      netlist::Placement pl = base.placement;
      const double sigma = 0.1 + 2.0 * rng.uniform();
      for (std::size_t i = 0; i < n; ++i) {
        const geom::Point p = pl.position(DeviceId{i});
        pl.set_position(DeviceId{i}, {p.x + rng.normal(0, sigma),
                                      p.y + rng.normal(0, sigma)});
      }
      placements.push_back(std::move(pl));
    }
  }

  // --- label by routed surrogate performance ---------------------------------
  const route::GridRouter router;
  std::vector<double> foms;
  foms.reserve(placements.size());
  for (const netlist::Placement& pl : placements) {
    const route::RoutingResult rr = router.route(*ctx->compiled, pl);
    foms.push_back(ctx->model.evaluate(pl, &rr).fom);
  }
  // Median-FOM threshold keeps the two classes balanced for every circuit
  // (the paper's threshold is user-specified; balance is what training
  // needs). Reported FOMs in the benches are raw, threshold-independent.
  std::vector<double> sorted = foms;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  ctx->label_threshold = sorted[sorted.size() / 2];

  std::vector<gnn::Sample> samples;
  samples.reserve(placements.size());
  for (std::size_t k = 0; k < placements.size(); ++k) {
    samples.push_back(gnn::Sample{
        positions_of(placements[k]),
        foms[k] < ctx->label_threshold ? 1.0 : 0.0});
  }

  // --- train -------------------------------------------------------------------
  numeric::Rng init_rng(opts.seed + 77);
  ctx->net.initialize(init_rng);
  gnn::Trainer trainer(ctx->graph, ctx->net, train_opts);
  ctx->training = trainer.train(samples);
  return ctx;
}

perf::PerformanceResult evaluate_routed(const PerfContext& ctx,
                                        const netlist::Placement& placement) {
  const route::GridRouter router;
  const route::RoutingResult rr = ctx.compiled
                                      ? router.route(*ctx.compiled, placement)
                                      : router.route(placement);
  return ctx.model.evaluate(placement, &rr);
}

double gnn_phi(const PerfContext& ctx, const netlist::Placement& placement) {
  gnn::GnnModel::Activations act;
  const numeric::Matrix x = ctx.graph.features(positions_of(placement));
  return ctx.net.forward(ctx.graph.adjacency(), x, act);
}

PerfFlowResult run_eplace_ap(const netlist::Circuit& circuit, PerfContext& ctx,
                             EPlaceAOptions opts) {
  APLACE_CHECK(opts.candidates >= 1);
  const netlist::Evaluator eval(circuit);
  PerfFlowResult best{FlowResult{netlist::Placement(circuit), {}, 0, 0, 0},
                      {}};
  double best_score = std::numeric_limits<double>::infinity();
  double scale_area = 1.0, scale_hpwl = 1.0;
  double acc_gp = 0, acc_dp = 0, acc_total = 0;

  // Candidate 0 is the conventional trajectory (no GNN term): when the
  // model is noisy on a circuit, its own phi-aware score can still fall
  // back to the conventional placement rather than regress below it.
  for (int k = 0; k <= opts.candidates; ++k) {
    gp::EPlaceGpOptions gopts = opts.gp;
    gopts.seed = opts.gp.seed + 48ULL * static_cast<std::uint64_t>(k);

    const auto t0 = Clock::now();
    gp::EPlaceGlobalPlacer placer(circuit, gopts);
    if (k > 0) {
      placer.set_extra_term(std::make_shared<gnn::PhiTerm>(ctx.graph, ctx.net));
    }
    gp::GpResult gpr = placer.run();
    const double gp_s = seconds_since(t0);

    const auto t1 = Clock::now();
    const legal::IlpDetailedPlacer dp(circuit, opts.dp);
    legal::IlpResult dpr = dp.place(gpr.positions);
    APLACE_CHECK_MSG(dpr.ok(), "ePlace-AP detailed placement failed on '"
                                   << circuit.name() << "'");
    const double dp_s = seconds_since(t1);
    acc_gp += gp_s;
    acc_dp += dp_s;
    acc_total += gp_s + dp_s;

    PerfFlowResult cand{
        FlowResult{std::move(dpr.placement), {}, 0, 0, 0}, {}};
    cand.flow.quality = eval.evaluate(cand.flow.placement);
    cand.flow.gp_trace = std::move(gpr.trace);
    if (k == 0) {
      scale_area = std::max(cand.flow.quality.area, 1e-9);
      scale_hpwl = std::max(cand.flow.quality.hpwl, 1e-9);
    }
    // Candidate choice by the method's own objective: normalized geometry
    // plus the GNN's failure probability (not the surrogate oracle).
    const double score = cand.flow.quality.area / scale_area +
                         cand.flow.quality.hpwl / scale_hpwl +
                         2.0 * gnn_phi(ctx, cand.flow.placement);
    if (score < best_score) {
      best_score = score;
      std::swap(best, cand);
    }
    if (k > 0) {
      // Fold the losing candidate's per-term counters into the winner's
      // trace (winner keeps its weights and convergence samples).
      best.flow.gp_trace.merge_counts(cand.flow.gp_trace);
    }
  }
  best.flow.gp_seconds = acc_gp;
  best.flow.dp_seconds = acc_dp;
  best.flow.total_seconds = acc_total;
  best.perf = evaluate_routed(ctx, best.flow.placement);
  return best;
}

PerfFlowResult run_prior_work_perf(const netlist::Circuit& circuit,
                                   PerfContext& ctx, PriorWorkOptions opts) {
  const auto t0 = Clock::now();
  gp::PriorAnalyticalGlobalPlacer placer(circuit, opts.gp);
  placer.set_extra_term(std::make_shared<gnn::PhiTerm>(ctx.graph, ctx.net));
  gp::GpResult gpr = placer.run();
  const double gp_s = seconds_since(t0);

  const auto t1 = Clock::now();
  const legal::TwoStageLpLegalizer dp(circuit, opts.dp);
  legal::TwoStageResult dpr = dp.place(gpr.positions);
  APLACE_CHECK_MSG(dpr.ok(), "Perf* detailed placement failed on '"
                                 << circuit.name() << "'");
  const double dp_s = seconds_since(t1);

  PerfFlowResult out{
      FlowResult{std::move(dpr.placement), {}, gp_s, dp_s, gp_s + dp_s}, {}};
  out.flow.quality = netlist::Evaluator(circuit).evaluate(out.flow.placement);
  out.flow.gp_trace = std::move(gpr.trace);
  out.perf = evaluate_routed(ctx, out.flow.placement);
  return out;
}

PerfFlowResult run_sa_perf(const netlist::Circuit& circuit, PerfContext& ctx,
                           SaFlowOptions opts, double alpha) {
  const auto t0 = Clock::now();
  sa::SaOptions sopts = opts.sa;
  sopts.extra_cost = [&ctx, alpha](const netlist::Placement& pl) {
    return alpha * gnn_phi(ctx, pl);
  };
  sa::SaPlacer placer(circuit, sopts);
  sa::SaResult sar = placer.place();
  const double total = seconds_since(t0);

  PerfFlowResult out{FlowResult{std::move(sar.placement), {}, 0, 0, total},
                     {}};
  out.flow.quality = netlist::Evaluator(circuit).evaluate(out.flow.placement);
  out.flow.sa_moves_per_second = sar.moves_per_second;
  out.flow.sa_net_eval_ratio = sar.eval_stats.net_eval_ratio();
  out.perf = evaluate_routed(ctx, out.flow.placement);
  return out;
}

}  // namespace aplace::core
