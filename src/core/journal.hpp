#pragma once
// Crash-consistent run journal for the batch driver.
//
// The journal is an append-only JSONL file: one self-contained JSON object
// per line, flushed (and fsync'd where the platform allows) before the write
// is considered done. A run that is SIGKILLed mid-record leaves at most one
// truncated final line, which the loader ignores — every fully written
// record survives. Placement snapshots are .aplc sidecar files in
// `<journal>.snapshots/`, each written to a temp file and atomically
// renamed into place, with an FNV-1a64 digest of the exact bytes recorded
// in the journal so a torn snapshot is detected and the job re-run.
//
// Record types (field `type`):
//   batch_start        a run_batch invocation began (jobs, resumed counts)
//   submit             one job entered the batch, with its stable key
//   start              an attempt at a job began
//   retry              an attempt failed with a retryable status; another
//                      attempt follows after backoff
//   interrupted        the job ended Cancelled/BudgetExhausted — NOT
//                      terminal, a resumed run executes it again
//   done               terminal: the job finished (Ok or a deterministic
//                      failure); carries the full FlowResult payload
//   attempts_exhausted terminal: every attempt failed with a retryable
//                      status — the job is quarantined and a resumed run
//                      skips it instead of burning its budget again
//
// Jobs are matched across runs by a caller-chosen stable key (the batch
// driver uses "label|flow|circuit|ndev"). Doubles are serialized with
// std::to_chars and parsed with std::from_chars, so a restored FlowResult
// is bit-identical to the one recorded.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/status.hpp"
#include "core/flow.hpp"
#include "obs/metrics.hpp"

namespace aplace::core {

/// FNV-1a 64-bit digest used for snapshot integrity checks.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// Everything a terminal record says about a finished job — enough to
/// rebuild its batch item without re-running the flow.
struct JournalEntry {
  std::string key;
  bool quarantined = false;  ///< record type was attempts_exhausted
  int attempts = 1;
  double wall_seconds = 0;

  // FlowResult payload.
  StatusCode code = StatusCode::Ok;
  std::string message;
  std::vector<std::string> trail;
  int fallback = 0;
  bool gp_diverged = false;
  bool deadline_hit = false;
  double gp_seconds = 0, dp_seconds = 0, total_seconds = 0;
  double sa_moves_per_second = 0, sa_net_eval_ratio = 0;
  netlist::QualityReport quality{};

  std::string snapshot;       ///< snapshot file name, empty = none recorded
  std::uint64_t digest = 0;   ///< FNV-1a64 of the snapshot bytes
  /// Circuit::digest() of the netlist the job ran on; 0 = unknown (record
  /// predates digest stamping). A resumed batch re-runs the job when this
  /// disagrees with the submitted circuit — the label|flow|circuit|ndev key
  /// alone cannot see a netlist edit that kept the name and device count.
  std::uint64_t circuit_digest = 0;
};

/// Append handle on a journal file. Thread-safe: concurrent pool jobs may
/// record through one instance. Default-constructed instances are inert
/// (every record_* call is a no-op), so callers can hold one unconditionally.
class RunJournal {
 public:
  RunJournal() = default;

  /// Open (create or append to) the journal at `path` and ensure its
  /// snapshot directory exists. Fails with InvalidInput when the file
  /// cannot be opened for appending.
  [[nodiscard]] static Result<RunJournal> open(const std::string& path);

  /// Terminal entries from an existing journal, keyed by job key; later
  /// records win. Tolerant by design: a missing file yields an empty map and
  /// malformed or truncated lines are skipped, never an error.
  [[nodiscard]] static std::map<std::string, JournalEntry> load_completed(
      const std::string& path);

  /// Re-read a recorded placement snapshot, verifying its digest. A missing
  /// or torn snapshot (or one that no longer matches the circuit) comes
  /// back non-ok; the caller should then re-run the job.
  [[nodiscard]] static Result<netlist::Placement> load_snapshot(
      const std::string& journal_path, const JournalEntry& entry,
      const netlist::Circuit& circuit);

  [[nodiscard]] bool active() const { return impl_ != nullptr; }
  [[nodiscard]] const std::string& path() const { return path_; }

  void record_batch_start(std::size_t num_jobs, std::size_t num_resumed);
  void record_submit(const std::string& key, std::size_t index);
  void record_start(const std::string& key, int attempt);
  void record_retry(const std::string& key, int attempt, const Status& st);
  void record_interrupted(const std::string& key, int attempts,
                          const Status& st);
  /// Terminal record. Writes the placement snapshot first (temp + rename)
  /// when every coordinate is finite, then appends the record referencing
  /// it. `quarantined` selects attempts_exhausted over done.
  /// `circuit_digest` is the Circuit::digest() of the netlist the job ran
  /// on (0 = unknown), used on resume to detect circuit drift.
  void record_terminal(const std::string& key, const FlowResult& result,
                       int attempts, double wall_seconds, bool quarantined,
                       std::uint64_t circuit_digest = 0);
  /// Observability rollup (type "metrics"): the merged registry snapshot as
  /// a nested JSON object. Informational — the resume loader ignores it.
  void record_metrics(const obs::MetricsSnapshot& snap);

 private:
  struct Impl;
  std::string path_;
  std::shared_ptr<Impl> impl_;  ///< shared so RunJournal stays copyable
};

}  // namespace aplace::core
