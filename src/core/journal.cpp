#include "core/journal.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string_view>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define APLACE_HAVE_FSYNC 1
#endif

#include "io/netlist_io.hpp"

namespace aplace::core {
namespace {

namespace fs = std::filesystem;

void append_double(std::string& out, double v) {
  std::array<char, 32> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  out.append(buf.data(), res.ptr);
}

std::string hex64(std::uint64_t v) {
  std::array<char, 17> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + 16, v, 16);
  return {buf.data(), res.ptr};
}

// ---- flat JSON ------------------------------------------------------------
// Records are single-level objects whose values are strings, numbers or
// booleans — all a journal line ever needs, and small enough to keep the
// tolerant re-loader trivially auditable.

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char ch : s) {
    const auto uc = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (uc < 0x20) {
          out += "\\u00";
          out += "0123456789abcdef"[uc >> 4];
          out += "0123456789abcdef"[uc & 0xf];
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

/// Builds one record line. Numbers go through to_chars so reloading them
/// with from_chars reproduces the exact double.
class RecordWriter {
 public:
  explicit RecordWriter(std::string_view type) : buf_("{") {
    add_string("type", type);
  }

  void add_string(std::string_view key, std::string_view value) {
    begin_field(key);
    append_json_string(buf_, value);
  }
  void add_raw(std::string_view key, std::string_view raw) {
    begin_field(key);
    buf_ += raw;
  }
  void add_num(std::string_view key, double v) {
    begin_field(key);
    if (std::isfinite(v)) {
      append_double(buf_, v);
    } else {
      // from_chars parses "inf"/"nan" back; JSON-quote to stay valid JSON.
      append_json_string(buf_, v != v ? "nan" : (v > 0 ? "inf" : "-inf"));
    }
  }
  void add_int(std::string_view key, long long v) {
    begin_field(key);
    buf_ += std::to_string(v);
  }
  void add_bool(std::string_view key, bool v) {
    add_raw(key, v ? "true" : "false");
  }

  [[nodiscard]] std::string finish() && {
    buf_ += "}\n";
    return std::move(buf_);
  }

 private:
  void begin_field(std::string_view key) {
    if (buf_.size() > 1) buf_ += ',';
    append_json_string(buf_, key);
    buf_ += ':';
  }

  std::string buf_;
};

bool is_json_ws(char ch) {
  return ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n';
}

/// Parse one flat JSON object into key -> value text (strings unescaped,
/// scalars raw). Returns false on anything malformed — the loader then
/// skips the line.
bool parse_flat_json(std::string_view line,
                     std::map<std::string, std::string>& out) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && is_json_ws(line[i])) ++i;
  };
  auto parse_string = [&](std::string& s) -> bool {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    s.clear();
    while (i < line.size()) {
      const char ch = line[i++];
      if (ch == '"') return true;
      if (ch != '\\') {
        s += ch;
        continue;
      }
      if (i >= line.size()) return false;
      const char esc = line[i++];
      switch (esc) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'n': s += '\n'; break;
        case 'r': s += '\r'; break;
        case 't': s += '\t'; break;
        case 'u': {
          if (i + 4 > line.size()) return false;
          unsigned cp = 0;
          for (int k = 0; k < 4; ++k) {
            const char hx = line[i++];
            cp <<= 4;
            if (hx >= '0' && hx <= '9') cp |= static_cast<unsigned>(hx - '0');
            else if (hx >= 'a' && hx <= 'f') cp |= static_cast<unsigned>(hx - 'a' + 10);
            else if (hx >= 'A' && hx <= 'F') cp |= static_cast<unsigned>(hx - 'A' + 10);
            else return false;
          }
          // We only ever emit \u00XX; decode any BMP scalar to UTF-8 anyway.
          if (cp < 0x80) {
            s += static_cast<char>(cp);
          } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (i >= line.size() || line[i] != ':') return false;
      ++i;
      skip_ws();
      std::string value;
      if (i < line.size() && line[i] == '"') {
        if (!parse_string(value)) return false;
      } else {
        const std::size_t start = i;
        while (i < line.size() && line[i] != ',' && line[i] != '}' &&
               !is_json_ws(line[i])) {
          ++i;
        }
        if (i == start) return false;
        value = std::string(line.substr(start, i - start));
      }
      out[std::move(key)] = std::move(value);
      skip_ws();
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      return false;
    }
  }
  skip_ws();
  return i == line.size();
}

// ---- field extraction -----------------------------------------------------

const std::string* get(const std::map<std::string, std::string>& m,
                       const std::string& key) {
  const auto it = m.find(key);
  return it == m.end() ? nullptr : &it->second;
}

void get_num(const std::map<std::string, std::string>& m,
             const std::string& key, double& out) {
  if (const std::string* v = get(m, key)) {
    double parsed = 0;
    const auto res = std::from_chars(v->data(), v->data() + v->size(), parsed);
    if (res.ec == std::errc{}) out = parsed;
  }
}

void get_int(const std::map<std::string, std::string>& m,
             const std::string& key, int& out) {
  if (const std::string* v = get(m, key)) {
    int parsed = 0;
    const auto res = std::from_chars(v->data(), v->data() + v->size(), parsed);
    if (res.ec == std::errc{}) out = parsed;
  }
}

void get_bool(const std::map<std::string, std::string>& m,
              const std::string& key, bool& out) {
  if (const std::string* v = get(m, key)) out = *v == "true";
}

std::optional<StatusCode> code_from_string(const std::string& s) {
  for (const StatusCode c :
       {StatusCode::Ok, StatusCode::InvalidInput, StatusCode::Diverged,
        StatusCode::Infeasible, StatusCode::BudgetExhausted,
        StatusCode::Cancelled, StatusCode::Internal}) {
    if (s == to_string(c)) return c;
  }
  return std::nullopt;
}

std::string snapshot_dir_for(const std::string& journal_path) {
  return journal_path + ".snapshots";
}

bool placement_is_finite(const netlist::Placement& pl) {
  const netlist::Circuit& c = pl.circuit();
  for (std::size_t i = 0; i < c.num_devices(); ++i) {
    const geom::Point p = pl.position(DeviceId{i});
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) return false;
  }
  return true;
}

/// Write `text` to `path` via temp file + rename so a crash never leaves a
/// half-written snapshot under the final name.
bool write_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      text.empty() ||
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  bool ok = wrote && std::fflush(f) == 0;
#ifdef APLACE_HAVE_FSYNC
  ok = ok && fsync(fileno(f)) == 0;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char ch : bytes) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  return h;
}

struct RunJournal::Impl {
  std::mutex mu;
  std::FILE* file = nullptr;
  std::string snapshot_dir;

  ~Impl() {
    if (file != nullptr) std::fclose(file);
  }

  /// Append one finished line. Flush + fsync before returning so the record
  /// is on disk when the caller moves on (crash consistency contract).
  void append(const std::string& line) {
    const std::lock_guard<std::mutex> lock(mu);
    if (file == nullptr) return;
    std::fwrite(line.data(), 1, line.size(), file);
    std::fflush(file);
#ifdef APLACE_HAVE_FSYNC
    fsync(fileno(file));
#endif
  }
};

Result<RunJournal> RunJournal::open(const std::string& path) {
  std::error_code ec;
  const fs::path dir = fs::path(path).parent_path();
  if (!dir.empty()) fs::create_directories(dir, ec);
  fs::create_directories(snapshot_dir_for(path), ec);
  if (ec) {
    return Status::invalid_input("cannot create snapshot directory '" +
                                 snapshot_dir_for(path) +
                                 "': " + ec.message());
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::invalid_input("cannot open journal '" + path +
                                 "' for appending");
  }
  RunJournal j;
  j.path_ = path;
  j.impl_ = std::make_shared<Impl>();
  j.impl_->file = f;
  j.impl_->snapshot_dir = snapshot_dir_for(path);
  return j;
}

std::map<std::string, JournalEntry> RunJournal::load_completed(
    const std::string& path) {
  std::map<std::string, JournalEntry> out;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return out;
  std::string line;
  while (std::getline(in, line)) {
    std::map<std::string, std::string> rec;
    if (!parse_flat_json(line, rec)) continue;  // torn/corrupt line
    const std::string* type = get(rec, "type");
    const std::string* key = get(rec, "key");
    if (type == nullptr || key == nullptr) continue;
    if (*type == "interrupted") {
      // The job was cut short — whatever terminal record an *earlier* batch
      // wrote still stands, but this run produced nothing final.
      continue;
    }
    if (*type != "done" && *type != "attempts_exhausted") continue;

    JournalEntry e;
    e.key = *key;
    e.quarantined = *type == "attempts_exhausted";
    get_int(rec, "attempts", e.attempts);
    get_num(rec, "wall_seconds", e.wall_seconds);
    if (const std::string* code = get(rec, "code")) {
      const auto parsed = code_from_string(*code);
      if (!parsed) continue;  // unknown code: treat record as unusable
      e.code = *parsed;
    }
    if (const std::string* msg = get(rec, "message")) e.message = *msg;
    int trail_n = 0;
    get_int(rec, "trail_n", trail_n);
    for (int t = 0; t < trail_n; ++t) {
      if (const std::string* note = get(rec, "trail" + std::to_string(t))) {
        e.trail.push_back(*note);
      }
    }
    get_int(rec, "fallback", e.fallback);
    get_bool(rec, "gp_diverged", e.gp_diverged);
    get_bool(rec, "deadline_hit", e.deadline_hit);
    get_num(rec, "gp_seconds", e.gp_seconds);
    get_num(rec, "dp_seconds", e.dp_seconds);
    get_num(rec, "total_seconds", e.total_seconds);
    get_num(rec, "sa_moves_per_second", e.sa_moves_per_second);
    get_num(rec, "sa_net_eval_ratio", e.sa_net_eval_ratio);
    get_num(rec, "hpwl", e.quality.hpwl);
    get_num(rec, "area", e.quality.area);
    get_num(rec, "overlap_area", e.quality.overlap_area);
    get_num(rec, "symmetry_violation", e.quality.symmetry_violation);
    get_num(rec, "alignment_violation", e.quality.alignment_violation);
    get_num(rec, "ordering_violation", e.quality.ordering_violation);
    get_num(rec, "centroid_violation", e.quality.centroid_violation);
    if (const std::string* snap = get(rec, "snapshot")) e.snapshot = *snap;
    const auto get_hex64 = [&rec](const std::string& field,
                                  std::uint64_t& value) {
      if (const std::string* hex = get(rec, field)) {
        std::uint64_t d = 0;
        const auto res =
            std::from_chars(hex->data(), hex->data() + hex->size(), d, 16);
        if (res.ec == std::errc{} && res.ptr == hex->data() + hex->size()) {
          value = d;
        }
      }
    };
    get_hex64("digest", e.digest);
    get_hex64("circuit_digest", e.circuit_digest);
    out[e.key] = std::move(e);  // later records win
  }
  return out;
}

Result<netlist::Placement> RunJournal::load_snapshot(
    const std::string& journal_path, const JournalEntry& entry,
    const netlist::Circuit& circuit) {
  if (entry.snapshot.empty()) {
    return Status::invalid_input("journal entry '" + entry.key +
                                 "' recorded no placement snapshot");
  }
  const std::string path =
      snapshot_dir_for(journal_path) + "/" + entry.snapshot;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return Status::invalid_input("snapshot '" + path + "' is missing");
  }
  std::ostringstream os;
  os << in.rdbuf();
  const std::string text = os.str();
  if (fnv1a64(text) != entry.digest) {
    return Status::invalid_input("snapshot '" + path +
                                 "' does not match its recorded digest");
  }
  return io::placement_from_text(circuit, text);
}

void RunJournal::record_batch_start(std::size_t num_jobs,
                                    std::size_t num_resumed) {
  if (!impl_) return;
  RecordWriter w("batch_start");
  w.add_int("version", 1);
  w.add_int("jobs", static_cast<long long>(num_jobs));
  w.add_int("resumed", static_cast<long long>(num_resumed));
  impl_->append(std::move(w).finish());
}

void RunJournal::record_submit(const std::string& key, std::size_t index) {
  if (!impl_) return;
  RecordWriter w("submit");
  w.add_string("key", key);
  w.add_int("index", static_cast<long long>(index));
  impl_->append(std::move(w).finish());
}

void RunJournal::record_start(const std::string& key, int attempt) {
  if (!impl_) return;
  RecordWriter w("start");
  w.add_string("key", key);
  w.add_int("attempt", attempt);
  impl_->append(std::move(w).finish());
}

void RunJournal::record_retry(const std::string& key, int attempt,
                              const Status& st) {
  if (!impl_) return;
  RecordWriter w("retry");
  w.add_string("key", key);
  w.add_int("attempt", attempt);
  w.add_string("code", to_string(st.code()));
  w.add_string("message", st.message());
  impl_->append(std::move(w).finish());
}

void RunJournal::record_interrupted(const std::string& key, int attempts,
                                    const Status& st) {
  if (!impl_) return;
  RecordWriter w("interrupted");
  w.add_string("key", key);
  w.add_int("attempts", attempts);
  w.add_string("code", to_string(st.code()));
  w.add_string("message", st.message());
  impl_->append(std::move(w).finish());
}

void RunJournal::record_metrics(const obs::MetricsSnapshot& snap) {
  if (!impl_ || snap.empty()) return;
  RecordWriter w("metrics");
  // Nested object, embedded raw: the tolerant flat-JSON loader skips this
  // record type (it only replays terminal entries), so nesting is safe —
  // the line exists for offline analysis of journal files.
  w.add_raw("metrics", snap.to_json());
  impl_->append(std::move(w).finish());
}

void RunJournal::record_terminal(const std::string& key,
                                 const FlowResult& result, int attempts,
                                 double wall_seconds, bool quarantined,
                                 std::uint64_t circuit_digest) {
  if (!impl_) return;

  // Snapshot first, record second: a record referencing a snapshot implies
  // the snapshot bytes already hit the disk.
  std::string snapshot_name;
  std::uint64_t digest = 0;
  if (placement_is_finite(result.placement)) {
    const std::string text = io::placement_to_text(result.placement);
    snapshot_name = hex64(fnv1a64(key)) + ".aplc";
    if (write_atomic(impl_->snapshot_dir + "/" + snapshot_name, text)) {
      digest = fnv1a64(text);
    } else {
      snapshot_name.clear();  // record the result without a snapshot
    }
  }

  RecordWriter w(quarantined ? "attempts_exhausted" : "done");
  w.add_string("key", key);
  w.add_int("attempts", attempts);
  w.add_num("wall_seconds", wall_seconds);
  w.add_string("code", to_string(result.status.code()));
  w.add_string("message", result.status.message());
  w.add_int("trail_n", static_cast<long long>(result.status.trail().size()));
  for (std::size_t t = 0; t < result.status.trail().size(); ++t) {
    w.add_string("trail" + std::to_string(t), result.status.trail()[t]);
  }
  w.add_int("fallback", static_cast<int>(result.fallback));
  w.add_bool("gp_diverged", result.gp_diverged);
  w.add_bool("deadline_hit", result.deadline_hit);
  w.add_num("gp_seconds", result.gp_seconds);
  w.add_num("dp_seconds", result.dp_seconds);
  w.add_num("total_seconds", result.total_seconds);
  w.add_num("sa_moves_per_second", result.sa_moves_per_second);
  w.add_num("sa_net_eval_ratio", result.sa_net_eval_ratio);
  w.add_num("hpwl", result.quality.hpwl);
  w.add_num("area", result.quality.area);
  w.add_num("overlap_area", result.quality.overlap_area);
  w.add_num("symmetry_violation", result.quality.symmetry_violation);
  w.add_num("alignment_violation", result.quality.alignment_violation);
  w.add_num("ordering_violation", result.quality.ordering_violation);
  w.add_num("centroid_violation", result.quality.centroid_violation);
  if (!snapshot_name.empty()) {
    w.add_string("snapshot", snapshot_name);
    w.add_string("digest", hex64(digest));
  }
  if (circuit_digest != 0) {
    w.add_string("circuit_digest", hex64(circuit_digest));
  }
  impl_->append(std::move(w).finish());
}

}  // namespace aplace::core
