#pragma once
// Batch placement driver: run many {circuit x flow} jobs concurrently on
// the shared thread pool under one wall-clock deadline.
//
// This is the serving-path entry point the ROADMAP asks for: a caller with
// a queue of placement requests (different circuits, different flows,
// different option sets) submits them all at once; the driver fans them out
// as pool tasks, every job honors the one shared Deadline, and a
// FlowResult is collected for every job even when individual jobs fail
// (the flows never crash — PR 2's contract — and any escaped exception is
// converted to an Internal status here as a second line of defense).
//
// Crash-safe serving additions:
//  * journal_path / resume_journal — every job's lifecycle and final result
//    (with its legalized placement snapshot) goes to a core::RunJournal; a
//    re-launched batch pointed at the same journal restores completed jobs
//    bit-identically instead of re-running them.
//  * retry — jobs that end Diverged/Internal are re-attempted with a
//    deterministically split seed and exponential backoff, then quarantined
//    (terminal attempts_exhausted record) once the attempts run out.
//  * cancel — a cooperative base::CancelToken threaded into every solver
//    watchdog site; in-flight jobs stop at their next poll, finished Ok
//    results are kept, and interrupted jobs re-run on resume.
//
// Jobs may freely nest onto the same pool: a job's candidate fan-out and
// hot-loop parallel_for calls help-run on the waiting threads, so a batch
// of few big jobs and a batch of many small jobs both saturate the pool.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "base/cancel.hpp"
#include "core/flow.hpp"

namespace aplace::core {

enum class FlowKind : std::uint8_t { EPlaceA, PriorWork, Sa };

inline const char* to_string(FlowKind f) {
  switch (f) {
    case FlowKind::EPlaceA: return "eplace-a";
    case FlowKind::PriorWork: return "prior-work";
    case FlowKind::Sa: return "sa";
  }
  return "?";
}

/// One unit of batch work. Only the options matching `flow` are used. The
/// circuit must stay alive until run_batch returns.
struct BatchJob {
  const netlist::Circuit* circuit = nullptr;
  FlowKind flow = FlowKind::EPlaceA;
  EPlaceAOptions eplace{};
  PriorWorkOptions prior{};
  SaFlowOptions sa{};
  std::string label;  ///< defaults to "<circuit>/<flow>" when empty
};

struct BatchItem {
  std::size_t index = 0;  ///< position in the submitted job list
  std::string label;
  FlowKind flow = FlowKind::EPlaceA;
  FlowResult result;
  double wall_seconds = 0;  ///< this job's own wall time
  int attempts = 1;         ///< flow executions this item consumed
  bool resumed = false;     ///< restored from the journal, not re-run
  bool quarantined = false; ///< every attempt failed retryably; terminal
};

/// Bounded retry for jobs whose failure is plausibly transient
/// (Diverged / Internal). Attempt 0 runs with the job's own seeds, so a
/// policy with max_attempts 1 is bit-identical to no policy; attempt k > 0
/// re-derives every seed via numeric::split_seed(seed, k), keeping retries
/// deterministic. After max_attempts failures the job is quarantined.
struct RetryPolicy {
  int max_attempts = 1;          ///< total attempts per job; min 1
  double backoff_seconds = 0.0;  ///< wait before the second attempt
  double backoff_growth = 2.0;   ///< wait multiplier per further attempt
  double max_backoff_seconds = 30.0;
};

struct BatchOptions {
  /// Shared wall-clock budget for the *whole batch*; 0 = unlimited. Every
  /// job sees the same Deadline, so a batch near its budget degrades jobs
  /// (cheaper fallbacks) instead of overrunning.
  double time_budget_seconds = 0;
  /// false: run the jobs one after another on the calling thread (useful
  /// as a speedup baseline and for debugging). Job *results* are identical
  /// either way when no deadline is set.
  bool parallel = true;
  /// Cooperative batch-wide cancellation (e.g. wired to SIGINT by the CLI).
  /// Jobs that already finished Ok keep their results; everything else
  /// comes back Cancelled and is re-run on a journal resume.
  base::CancelToken cancel;
  /// Retry-with-backoff for Diverged/Internal jobs; default = one attempt.
  RetryPolicy retry;
  /// Journal file to record this run into; empty = no journaling. Backoff
  /// sleeps, snapshots and fsyncs happen only when this is set.
  std::string journal_path;
  /// Restore jobs already completed in `journal_path` (matched by
  /// label|flow|circuit|device-count) instead of re-running them; restored
  /// FlowResults are bit-identical to the recorded ones.
  bool resume_journal = false;
};

struct BatchReport {
  std::vector<BatchItem> items;  ///< in job order, one per submitted job
  double wall_seconds = 0;       ///< whole-batch wall time
  std::size_t num_ok = 0;        ///< jobs whose FlowResult status is Ok
  std::size_t num_resumed = 0;      ///< restored from the journal
  std::size_t num_quarantined = 0;  ///< terminally retried-out
  /// Non-ok when journaling was requested but the journal could not be
  /// opened; the batch still ran (without journaling) so callers can decide
  /// whether that is fatal.
  Status journal_status{};

  [[nodiscard]] std::size_t num_failed() const {
    return items.size() - num_ok;
  }
};

/// Stable identity of a job across batch invocations — what the journal
/// matches resumed jobs by.
[[nodiscard]] std::string batch_job_key(const BatchJob& job);

/// Run every job and collect every result. Jobs with a null circuit are
/// rejected up front (CheckError) — everything else, including solver
/// failures, expired budgets and cancellation, comes back as a structured
/// FlowResult.
[[nodiscard]] BatchReport run_batch(std::span<const BatchJob> jobs,
                                    const BatchOptions& opts = {});

}  // namespace aplace::core
