#pragma once
// Batch placement driver: run many {circuit x flow} jobs concurrently on
// the shared thread pool under one wall-clock deadline.
//
// This is the serving-path entry point the ROADMAP asks for: a caller with
// a queue of placement requests (different circuits, different flows,
// different option sets) submits them all at once; the driver fans them out
// as pool tasks, every job honors the one shared Deadline, and a
// FlowResult is collected for every job even when individual jobs fail
// (the flows never crash — PR 2's contract — and any escaped exception is
// converted to an Internal status here as a second line of defense).
//
// Jobs may freely nest onto the same pool: a job's candidate fan-out and
// hot-loop parallel_for calls help-run on the waiting threads, so a batch
// of few big jobs and a batch of many small jobs both saturate the pool.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/flow.hpp"

namespace aplace::core {

enum class FlowKind : std::uint8_t { EPlaceA, PriorWork, Sa };

inline const char* to_string(FlowKind f) {
  switch (f) {
    case FlowKind::EPlaceA: return "eplace-a";
    case FlowKind::PriorWork: return "prior-work";
    case FlowKind::Sa: return "sa";
  }
  return "?";
}

/// One unit of batch work. Only the options matching `flow` are used. The
/// circuit must stay alive until run_batch returns.
struct BatchJob {
  const netlist::Circuit* circuit = nullptr;
  FlowKind flow = FlowKind::EPlaceA;
  EPlaceAOptions eplace{};
  PriorWorkOptions prior{};
  SaFlowOptions sa{};
  std::string label;  ///< defaults to "<circuit>/<flow>" when empty
};

struct BatchItem {
  std::size_t index = 0;  ///< position in the submitted job list
  std::string label;
  FlowKind flow = FlowKind::EPlaceA;
  FlowResult result;
  double wall_seconds = 0;  ///< this job's own wall time
};

struct BatchOptions {
  /// Shared wall-clock budget for the *whole batch*; 0 = unlimited. Every
  /// job sees the same Deadline, so a batch near its budget degrades jobs
  /// (cheaper fallbacks) instead of overrunning.
  double time_budget_seconds = 0;
  /// false: run the jobs one after another on the calling thread (useful
  /// as a speedup baseline and for debugging). Job *results* are identical
  /// either way when no deadline is set.
  bool parallel = true;
};

struct BatchReport {
  std::vector<BatchItem> items;  ///< in job order, one per submitted job
  double wall_seconds = 0;       ///< whole-batch wall time
  std::size_t num_ok = 0;        ///< jobs whose FlowResult status is Ok

  [[nodiscard]] std::size_t num_failed() const {
    return items.size() - num_ok;
  }
};

/// Run every job and collect every result. Jobs with a null circuit are
/// rejected up front (CheckError) — everything else, including solver
/// failures and expired budgets, comes back as a structured FlowResult.
[[nodiscard]] BatchReport run_batch(std::span<const BatchJob> jobs,
                                    const BatchOptions& opts = {});

}  // namespace aplace::core
