#pragma once
// End-to-end conventional (performance-oblivious) placement flows — the
// three methods compared in paper Table III:
//
//   * run_eplace_a:   ePlace-A = Nesterov/electrostatics GP + single-stage
//                     ILP legalization/detailed placement with flipping.
//   * run_prior_work: the prior analytical method [11] = NTUplace3-style GP
//                     (LSE + bell density, CG) + two-stage LP, no flipping,
//                     no area term.
//   * run_sa:         simulated annealing over sequence pairs with symmetry
//                     islands.
//
// Each returns the legalized placement plus quality metrics, timing, and a
// structured account of how the answer was produced: a Status (Ok, or why
// the flow degraded/failed) and the FallbackLevel of the legalizer that
// actually delivered the placement. Flows never throw on malformed input or
// solver failure — netlist::validate() runs as a pre-flight check and
// escaped exceptions are converted to Internal statuses at the flow
// boundary.

#include "base/cancel.hpp"
#include "base/status.hpp"
#include "core/compile_cache.hpp"
#include "gp/eplace_gp.hpp"
#include "gp/ntu_gp.hpp"
#include "legal/greedy_shift.hpp"
#include "legal/ilp_detailed.hpp"
#include "legal/two_stage_lp.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/validate.hpp"
#include "obs/span.hpp"
#include "sa/annealer.hpp"

namespace aplace::core {

/// Which legalizer in the fallback chain produced the final placement.
/// The ePlace-A chain is: ILP (None) -> rounded LP relaxation (RoundedLp)
/// -> two-stage LP (TwoStageLp) -> greedy shift (GreedyShift). The
/// prior-work flow starts at its own two-stage LP (None) and falls back to
/// GreedyShift; the SA flow reports None when annealing itself ended legal.
enum class FallbackLevel : std::uint8_t {
  None,         ///< the flow's primary legalizer succeeded
  RoundedLp,    ///< ILP relaxation with flipping off, single round
  TwoStageLp,   ///< two-stage LP legalizer as fallback
  GreedyShift,  ///< greedy shift last resort
};

inline const char* to_string(FallbackLevel f) {
  switch (f) {
    case FallbackLevel::None: return "none";
    case FallbackLevel::RoundedLp: return "rounded-lp";
    case FallbackLevel::TwoStageLp: return "two-stage-lp";
    case FallbackLevel::GreedyShift: return "greedy-shift";
  }
  return "?";
}

/// Deterministic fault injection for the robustness test harness: force
/// individual fallback levels to fail (as if infeasible) or poison the GP
/// hand-off with NaN, so every link of the chain can be exercised on
/// circuits that would otherwise legalize first try.
struct FaultInjection {
  bool fail_primary_dp = false;  ///< primary legalizer reports Infeasible
  bool fail_rounded_lp = false;  ///< rounded-LP fallback reports Infeasible
  bool fail_two_stage = false;   ///< two-stage fallback reports Infeasible
  bool poison_gp = false;        ///< replace the GP hand-off with NaN
};

struct FlowResult {
  netlist::Placement placement;
  netlist::QualityReport quality{};  ///< post-detailed-placement metrics
  double gp_seconds = 0;
  double dp_seconds = 0;
  double total_seconds = 0;
  /// How the flow ended. Ok means `placement` is legal; otherwise the code
  /// and trail explain the failure (InvalidInput, Infeasible, ...) and
  /// `placement` is best-effort diagnostics only.
  aplace::Status status{};
  FallbackLevel fallback = FallbackLevel::None;
  bool gp_diverged = false;   ///< GP watchdog tripped; hand-off was rescued
  bool deadline_hit = false;  ///< some stage was truncated by the budget
  /// Per-objective-term observability from the global placer (eval counts
  /// and seconds aggregated over every candidate; weights and convergence
  /// samples from the winning candidate). Empty for the SA flow.
  gp::TermTrace gp_trace{};
  /// SA-flow throughput observability (0 for the analytical flows):
  /// annealer moves per second, and the fraction of nets the incremental
  /// evaluator actually re-evaluated per move (1.0 would mean no caching).
  double sa_moves_per_second = 0;
  double sa_net_eval_ratio = 0;
  /// This flow's span tree (stage timings: GP, each legalizer attempt,
  /// evaluation, SA chains, ...), extracted from the global SpanCollector
  /// at the flow boundary. Empty when observability is disabled. Render
  /// with obs::chrome_trace_json() for chrome://tracing.
  std::vector<obs::SpanEvent> spans{};

  [[nodiscard]] double area() const { return quality.area; }
  [[nodiscard]] double hpwl() const { return quality.hpwl; }
  [[nodiscard]] bool legal(double tol = 1e-6) const {
    return quality.legal(tol);
  }
  [[nodiscard]] bool ok() const { return status.ok(); }
};

struct EPlaceAOptions {
  gp::EPlaceGpOptions gp;
  legal::IlpOptions dp;
  /// Independent GP+DP candidates (different GP seed groups); the best
  /// placement by normalized area+wirelength is kept. Candidates run
  /// concurrently on the global thread pool, each on an RNG stream split
  /// from gp.seed, with an ordered best-of reduction — the chosen result is
  /// identical for every thread count.
  int candidates = 2;
  /// Wall-clock budget for the whole flow; 0 = unlimited. On expiry the
  /// remaining stages degrade (cheaper fallbacks) instead of overrunning.
  double time_budget_seconds = 0;
  /// Externally shared deadline (the batch driver hands one Deadline to
  /// every job). When limited it takes precedence over time_budget_seconds.
  Deadline deadline;
  /// Cooperative cancellation shared by the batch driver: in-flight stages
  /// stop at their next watchdog check and the flow reports Cancelled
  /// (unless it already finished with a legal placement, which stays Ok).
  base::CancelToken cancel;
  FaultInjection inject;
  /// Shared compiled-snapshot cache. The batch driver injects one cache
  /// into every job so a circuit is compiled once per batch instead of once
  /// per job; null (the default) compiles a private snapshot.
  std::shared_ptr<CompileCache> compile_cache;
};

struct PriorWorkOptions {
  gp::NtuGpOptions gp;
  legal::TwoStageOptions dp;
  double time_budget_seconds = 0;  ///< 0 = unlimited
  Deadline deadline;  ///< shared external deadline; overrides the budget
  base::CancelToken cancel;  ///< cooperative cancellation (see EPlaceAOptions)
  FaultInjection inject;
  /// Shared compiled-snapshot cache (see EPlaceAOptions::compile_cache).
  std::shared_ptr<CompileCache> compile_cache;
};

struct SaFlowOptions {
  sa::SaOptions sa;
  double time_budget_seconds = 0;  ///< 0 = unlimited
  Deadline deadline;  ///< shared external deadline; overrides the budget
  base::CancelToken cancel;  ///< cooperative cancellation (see EPlaceAOptions)
  FaultInjection inject;
  /// Shared compiled-snapshot cache (see EPlaceAOptions::compile_cache).
  std::shared_ptr<CompileCache> compile_cache;
};

[[nodiscard]] FlowResult run_eplace_a(const netlist::Circuit& circuit,
                                      EPlaceAOptions opts = {});
[[nodiscard]] FlowResult run_prior_work(const netlist::Circuit& circuit,
                                        PriorWorkOptions opts = {});
[[nodiscard]] FlowResult run_sa(const netlist::Circuit& circuit,
                                SaFlowOptions opts = {});

}  // namespace aplace::core
