#pragma once
// End-to-end conventional (performance-oblivious) placement flows — the
// three methods compared in paper Table III:
//
//   * run_eplace_a:   ePlace-A = Nesterov/electrostatics GP + single-stage
//                     ILP legalization/detailed placement with flipping.
//   * run_prior_work: the prior analytical method [11] = NTUplace3-style GP
//                     (LSE + bell density, CG) + two-stage LP, no flipping,
//                     no area term.
//   * run_sa:         simulated annealing over sequence pairs with symmetry
//                     islands.
//
// Each returns the legalized placement plus quality metrics and timing.

#include "gp/eplace_gp.hpp"
#include "gp/ntu_gp.hpp"
#include "legal/ilp_detailed.hpp"
#include "legal/two_stage_lp.hpp"
#include "netlist/evaluator.hpp"
#include "sa/annealer.hpp"

namespace aplace::core {

struct FlowResult {
  netlist::Placement placement;
  netlist::QualityReport quality;  ///< post-detailed-placement metrics
  double gp_seconds = 0;
  double dp_seconds = 0;
  double total_seconds = 0;

  [[nodiscard]] double area() const { return quality.area; }
  [[nodiscard]] double hpwl() const { return quality.hpwl; }
  [[nodiscard]] bool legal(double tol = 1e-6) const {
    return quality.legal(tol);
  }
};

struct EPlaceAOptions {
  gp::EPlaceGpOptions gp;
  legal::IlpOptions dp;
  /// Independent GP+DP candidates (different GP seed groups); the best
  /// placement by normalized area+wirelength is kept.
  int candidates = 2;
};

struct PriorWorkOptions {
  gp::NtuGpOptions gp;
  legal::TwoStageOptions dp;
};

struct SaFlowOptions {
  sa::SaOptions sa;
};

[[nodiscard]] FlowResult run_eplace_a(const netlist::Circuit& circuit,
                                      EPlaceAOptions opts = {});
[[nodiscard]] FlowResult run_prior_work(const netlist::Circuit& circuit,
                                        PriorWorkOptions opts = {});
[[nodiscard]] FlowResult run_sa(const netlist::Circuit& circuit,
                                SaFlowOptions opts = {});

}  // namespace aplace::core
