#pragma once
// Digest-keyed cache of compiled netlist snapshots shared across the jobs
// of one batch.
//
// Every flow compiles its circuit into one immutable netlist::CompiledCircuit
// and hands the snapshot to its placers and legalizers. A batch that runs
// the same circuit through several flows (the paper's circuit x method
// matrix) would compile it once per job; the batch driver instead injects
// one CompileCache into every job's options so the first job to touch a
// circuit compiles it and the rest fetch the shared snapshot.
//
// The cache is scoped to the batch on purpose, never process-global: a
// snapshot borrows its source Circuit (CompiledCircuit::circuit()), so a
// cache outliving the circuits it was fed would hand out snapshots with
// dangling references. run_batch owns the cache and the caller owns the
// circuits for at least as long (BatchJob borrows them), which makes the
// per-batch scope safe by construction.

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "netlist/compiled.hpp"

namespace aplace::core {

/// Thread-safe digest -> snapshot map (jobs fan out on the pool). Entries
/// are shared_ptr so a snapshot stays alive for any engine still holding it
/// even after the cache itself is destroyed.
class CompileCache {
 public:
  /// Return the cached snapshot for `circuit` (matched by Circuit::digest()
  /// *and* object identity), or compile and cache one. On the rare digest
  /// collision between two distinct Circuit objects the second caller gets
  /// a private snapshot of its own circuit instead of one whose circuit()
  /// reference it does not control.
  [[nodiscard]] std::shared_ptr<const netlist::CompiledCircuit> get_or_compile(
      const netlist::Circuit& circuit);

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t,
                     std::shared_ptr<const netlist::CompiledCircuit>>
      by_digest_;
};

/// Flow-side entry point: fetch through `cache` when the batch driver
/// injected one, else compile a private snapshot. Either way the compile
/// itself lands in the compile/cache_miss counter and compile/seconds
/// histogram; cache hits land in compile/cache_hit.
[[nodiscard]] std::shared_ptr<const netlist::CompiledCircuit> compile_or_fetch(
    const std::shared_ptr<CompileCache>& cache,
    const netlist::Circuit& circuit);

}  // namespace aplace::core
