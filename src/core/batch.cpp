#include "core/batch.hpp"

#include <chrono>
#include <optional>
#include <utility>

#include "base/thread_pool.hpp"

namespace aplace::core {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

FlowResult dispatch(const BatchJob& job, const Deadline& deadline) {
  switch (job.flow) {
    case FlowKind::EPlaceA: {
      EPlaceAOptions o = job.eplace;
      o.deadline = deadline;
      return run_eplace_a(*job.circuit, std::move(o));
    }
    case FlowKind::PriorWork: {
      PriorWorkOptions o = job.prior;
      o.deadline = deadline;
      return run_prior_work(*job.circuit, std::move(o));
    }
    case FlowKind::Sa: {
      SaFlowOptions o = job.sa;
      o.deadline = deadline;
      return run_sa(*job.circuit, std::move(o));
    }
  }
  return run_eplace_a(*job.circuit, job.eplace);  // unreachable
}

}  // namespace

BatchReport run_batch(std::span<const BatchJob> jobs,
                      const BatchOptions& opts) {
  for (const BatchJob& job : jobs) {
    APLACE_CHECK_MSG(job.circuit != nullptr, "batch job without a circuit");
  }
  const Deadline deadline = opts.time_budget_seconds > 0
                                ? Deadline::after_seconds(opts.time_budget_seconds)
                                : Deadline{};

  const auto batch_t0 = Clock::now();
  std::vector<std::optional<BatchItem>> slots(jobs.size());
  auto run_job = [&](std::size_t i) {
    const BatchJob& job = jobs[i];
    std::string label = job.label.empty()
                            ? job.circuit->name() + "/" + to_string(job.flow)
                            : job.label;
    const auto t0 = Clock::now();
    FlowResult result = [&]() -> FlowResult {
      try {
        return dispatch(job, deadline);
      } catch (const std::exception& e) {
        // The flows convert their own failures to statuses; this catches
        // anything that still escapes (e.g. a CheckError on malformed
        // options) so one bad job cannot take the batch down.
        FlowResult r{netlist::Placement(*job.circuit), {}, 0, 0, 0};
        r.status = aplace::Status::internal(std::string("batch job threw: ") +
                                            e.what())
                       .add_context("batch job '" + label + "'");
        return r;
      }
    }();
    const double wall = seconds_since(t0);
    slots[i] = BatchItem{i, std::move(label), job.flow, std::move(result), wall};
  };

  if (opts.parallel && jobs.size() > 1) {
    base::ThreadPool& pool = base::ThreadPool::global();
    base::ThreadPool::TaskGroup group(pool);
    for (std::size_t i = 1; i < jobs.size(); ++i) {
      group.run([&run_job, i] { run_job(i); });
    }
    run_job(0);
    group.wait();
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_job(i);
  }

  BatchReport report;
  report.items.reserve(jobs.size());
  for (std::optional<BatchItem>& slot : slots) {
    APLACE_CHECK(slot.has_value());
    report.num_ok += slot->result.ok() ? 1 : 0;
    report.items.push_back(std::move(*slot));
  }
  report.wall_seconds = seconds_since(batch_t0);
  return report;
}

}  // namespace aplace::core
