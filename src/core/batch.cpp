#include "core/batch.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "base/thread_pool.hpp"
#include "core/journal.hpp"
#include "numeric/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace aplace::core {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Run the job's flow. Attempt 0 uses the job's own seeds (bit-compatible
/// with a retry-free configuration); attempt k > 0 splits every seed
/// deterministically so retries explore a different random stream without
/// introducing wall-clock or thread-count dependence.
FlowResult dispatch(const BatchJob& job, const Deadline& deadline,
                    const base::CancelToken& cancel, int attempt,
                    const std::shared_ptr<CompileCache>& compile_cache) {
  const auto reseed = [attempt](std::uint64_t seed) {
    return attempt == 0
               ? seed
               : numeric::split_seed(seed, static_cast<std::uint64_t>(attempt));
  };
  switch (job.flow) {
    case FlowKind::EPlaceA: {
      EPlaceAOptions o = job.eplace;
      o.deadline = deadline;
      o.cancel = cancel;
      o.compile_cache = compile_cache;
      o.gp.seed = reseed(o.gp.seed);
      return run_eplace_a(*job.circuit, std::move(o));
    }
    case FlowKind::PriorWork: {
      PriorWorkOptions o = job.prior;
      o.deadline = deadline;
      o.cancel = cancel;
      o.compile_cache = compile_cache;
      o.gp.seed = reseed(o.gp.seed);
      return run_prior_work(*job.circuit, std::move(o));
    }
    case FlowKind::Sa: {
      SaFlowOptions o = job.sa;
      o.deadline = deadline;
      o.cancel = cancel;
      o.compile_cache = compile_cache;
      o.sa.seed = reseed(o.sa.seed);
      return run_sa(*job.circuit, std::move(o));
    }
  }
  return run_eplace_a(*job.circuit, job.eplace);  // unreachable
}

bool retryable(StatusCode code) {
  return code == StatusCode::Diverged || code == StatusCode::Internal;
}

/// Exponential backoff before attempt `next_attempt` (1-based beyond the
/// first try), slept in small slices so cancellation and the batch deadline
/// cut the wait short.
void backoff_wait(const RetryPolicy& policy, int next_attempt,
                  const Deadline& deadline, const base::CancelToken& cancel) {
  double wait = policy.backoff_seconds;
  for (int k = 1; k < next_attempt; ++k) wait *= policy.backoff_growth;
  wait = std::min(wait, policy.max_backoff_seconds);
  if (wait <= 0) return;
  const auto t0 = Clock::now();
  while (seconds_since(t0) < wait) {
    if (cancel.cancelled() || deadline.expired()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

std::string job_label(const BatchJob& job) {
  return job.label.empty() ? job.circuit->name() + "/" + to_string(job.flow)
                           : job.label;
}

/// Rebuild a BatchItem from a terminal journal entry. Fails (nullopt) when
/// the recorded snapshot is missing or torn — the caller re-runs the job.
std::optional<BatchItem> restore_item(const JournalEntry& entry,
                                      const BatchJob& job, std::size_t index,
                                      const std::string& label,
                                      const std::string& journal_path) {
  FlowResult r{.placement = netlist::Placement(*job.circuit)};
  if (!entry.snapshot.empty()) {
    Result<netlist::Placement> snap =
        RunJournal::load_snapshot(journal_path, entry, *job.circuit);
    if (!snap.ok()) return std::nullopt;
    r.placement = std::move(snap.value());
  }
  Status st(entry.code, entry.message);
  for (const std::string& note : entry.trail) st.add_context(note);
  r.status = std::move(st);
  r.fallback = static_cast<FallbackLevel>(std::clamp(
      entry.fallback, 0, static_cast<int>(FallbackLevel::GreedyShift)));
  r.gp_diverged = entry.gp_diverged;
  r.deadline_hit = entry.deadline_hit;
  r.gp_seconds = entry.gp_seconds;
  r.dp_seconds = entry.dp_seconds;
  r.total_seconds = entry.total_seconds;
  r.sa_moves_per_second = entry.sa_moves_per_second;
  r.sa_net_eval_ratio = entry.sa_net_eval_ratio;
  r.quality = entry.quality;

  BatchItem item{index,
                 label,
                 job.flow,
                 std::move(r),
                 entry.wall_seconds,
                 entry.attempts,
                 /*resumed=*/true,
                 entry.quarantined};
  return item;
}

}  // namespace

std::string batch_job_key(const BatchJob& job) {
  return job_label(job) + "|" + to_string(job.flow) + "|" +
         job.circuit->name() + "|" + std::to_string(job.circuit->num_devices());
}

BatchReport run_batch(std::span<const BatchJob> jobs,
                      const BatchOptions& opts) {
  for (const BatchJob& job : jobs) {
    APLACE_CHECK_MSG(job.circuit != nullptr, "batch job without a circuit");
  }
  const Deadline deadline = opts.time_budget_seconds > 0
                                ? Deadline::after_seconds(opts.time_budget_seconds)
                                : Deadline{};

  // Journal plumbing: an unopenable journal is reported, not fatal — the
  // batch still runs, just without crash safety.
  RunJournal journal;
  Status journal_status;
  std::map<std::string, JournalEntry> completed;
  if (!opts.journal_path.empty()) {
    if (opts.resume_journal) {
      completed = RunJournal::load_completed(opts.journal_path);
    }
    Result<RunJournal> opened = RunJournal::open(opts.journal_path);
    if (opened.ok()) {
      journal = std::move(opened.value());
    } else {
      journal_status = opened.status();
    }
  }

  std::vector<std::string> keys(jobs.size());
  std::size_t planned_resumes = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    keys[i] = batch_job_key(jobs[i]);
    planned_resumes += completed.contains(keys[i]) ? 1 : 0;
  }
  journal.record_batch_start(jobs.size(), planned_resumes);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    journal.record_submit(keys[i], i);
  }

  const auto batch_t0 = Clock::now();
  obs::counter("batch/jobs").add(jobs.size());
  // One compiled-snapshot cache for the whole batch: the circuit x flow
  // matrix compiles each circuit once, not once per job. Scoped here (not
  // globally) because snapshots borrow the caller's circuits — see
  // core/compile_cache.hpp.
  const auto compile_cache = std::make_shared<CompileCache>();
  std::vector<std::optional<BatchItem>> slots(jobs.size());
  auto run_job = [&](std::size_t i) {
    obs::Span job_span("batch/job");
    const BatchJob& job = jobs[i];
    const std::string& key = keys[i];
    std::string label = job_label(job);

    if (const auto done = completed.find(key); done != completed.end()) {
      // A terminal record only stands for *this* circuit revision: when the
      // recorded circuit digest disagrees with the submitted circuit (the
      // netlist changed between runs but kept its name and device count),
      // the record is stale and the job re-runs. Records from journals that
      // predate digest stamping (0 = unknown) restore as before.
      const bool drifted = done->second.circuit_digest != 0 &&
                           done->second.circuit_digest != job.circuit->digest();
      if (drifted) {
        obs::counter("batch/digest_mismatch").inc();
      } else if (std::optional<BatchItem> restored = restore_item(
                     done->second, job, i, label, opts.journal_path)) {
        obs::counter("batch/resumed").inc();
        slots[i] = std::move(*restored);
        return;
      }
      // Torn snapshot or drifted circuit: execute the job for real.
    }

    const auto t0 = Clock::now();
    const int max_attempts = std::max(1, opts.retry.max_attempts);
    FlowResult result{.placement = netlist::Placement(*job.circuit)};
    int attempt = 0;
    while (true) {
      journal.record_start(key, attempt);
      result = [&]() -> FlowResult {
        try {
          return dispatch(job, deadline, opts.cancel, attempt, compile_cache);
        } catch (const std::exception& e) {
          // The flows convert their own failures to statuses; this catches
          // anything that still escapes (e.g. a CheckError on malformed
          // options) so one bad job cannot take the batch down.
          FlowResult r{.placement = netlist::Placement(*job.circuit)};
          r.status = aplace::Status::internal(
                         std::string("batch job threw: ") + e.what())
                         .add_context("batch job '" + label + "'");
          return r;
        }
      }();
      const StatusCode code = result.status.code();
      if (result.status.ok() || !retryable(code)) break;
      if (attempt + 1 >= max_attempts) break;
      if (opts.cancel.cancelled() || deadline.expired()) break;
      journal.record_retry(key, attempt, result.status);
      obs::counter("batch/retries").inc();
      backoff_wait(opts.retry, attempt + 1, deadline, opts.cancel);
      if (opts.cancel.cancelled() || deadline.expired()) break;
      ++attempt;
    }
    const int attempts = attempt + 1;
    const double wall = seconds_since(t0);

    const StatusCode code = result.status.code();
    bool quarantined = false;
    if (code == StatusCode::Cancelled || code == StatusCode::BudgetExhausted) {
      // Not terminal: a resumed batch runs this job again with a fresh
      // budget instead of replaying the interruption.
      journal.record_interrupted(key, attempts, result.status);
      obs::counter("batch/interrupted").inc();
    } else {
      quarantined = !result.status.ok() && retryable(code) &&
                    max_attempts > 1 && attempts >= max_attempts;
      journal.record_terminal(key, result, attempts, wall, quarantined,
                              job.circuit->digest());
      obs::counter(result.status.ok() ? "batch/done_ok" : "batch/done_failed")
          .inc();
      if (quarantined) obs::counter("batch/quarantined").inc();
    }
    obs::histogram("batch/job_wall_seconds").record(wall);
    slots[i] = BatchItem{i,
                         std::move(label),
                         job.flow,
                         std::move(result),
                         wall,
                         attempts,
                         /*resumed=*/false,
                         quarantined};
  };

  if (opts.parallel && jobs.size() > 1) {
    base::ThreadPool& pool = base::ThreadPool::global();
    base::ThreadPool::TaskGroup group(pool);
    for (std::size_t i = 1; i < jobs.size(); ++i) {
      group.run([&run_job, i] { run_job(i); });
    }
    run_job(0);
    group.wait();
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_job(i);
  }

  BatchReport report;
  report.journal_status = std::move(journal_status);
  report.items.reserve(jobs.size());
  for (std::optional<BatchItem>& slot : slots) {
    APLACE_CHECK(slot.has_value());
    report.num_ok += slot->result.ok() ? 1 : 0;
    report.num_resumed += slot->resumed ? 1 : 0;
    report.num_quarantined += slot->quarantined ? 1 : 0;
    report.items.push_back(std::move(*slot));
  }
  report.wall_seconds = seconds_since(batch_t0);
  if (obs::enabled()) {
    // One rollup line per batch so a journal file is self-describing about
    // where its wall-clock went.
    journal.record_metrics(obs::MetricsRegistry::global().scrape());
  }
  return report;
}

}  // namespace aplace::core
