#include "core/flow.hpp"

#include <chrono>
#include <limits>

namespace aplace::core {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

FlowResult run_eplace_a(const netlist::Circuit& circuit, EPlaceAOptions opts) {
  APLACE_CHECK(opts.candidates >= 1);
  const netlist::Evaluator eval(circuit);
  FlowResult best{netlist::Placement(circuit), {}, 0, 0, 0};
  double best_score = std::numeric_limits<double>::infinity();
  double scale_area = 1.0, scale_hpwl = 1.0;

  for (int k = 0; k < opts.candidates; ++k) {
    gp::EPlaceGpOptions gopts = opts.gp;
    gopts.seed = opts.gp.seed + 48ULL * static_cast<std::uint64_t>(k);

    const auto t0 = Clock::now();
    gp::EPlaceGlobalPlacer placer(circuit, gopts);
    const gp::GpResult gpr = placer.run();
    const double gp_s = seconds_since(t0);

    const auto t1 = Clock::now();
    const legal::IlpDetailedPlacer dp(circuit, opts.dp);
    legal::IlpResult dpr = dp.place(gpr.positions);
    APLACE_CHECK_MSG(dpr.ok(), "ePlace-A detailed placement "
                                   << to_string(dpr.status) << " on circuit '"
                                   << circuit.name() << "'");
    const double dp_s = seconds_since(t1);

    FlowResult cand{std::move(dpr.placement), {}, gp_s, dp_s, gp_s + dp_s};
    cand.quality = eval.evaluate(cand.placement);
    if (k == 0) {
      scale_area = std::max(cand.quality.area, 1e-9);
      scale_hpwl = std::max(cand.quality.hpwl, 1e-9);
    }
    const double score =
        cand.quality.area / scale_area + cand.quality.hpwl / scale_hpwl;
    // Accumulate runtime across candidates (they run sequentially).
    cand.gp_seconds += best.gp_seconds;
    cand.dp_seconds += best.dp_seconds;
    cand.total_seconds += best.total_seconds;
    if (score < best_score) {
      best_score = score;
      best = std::move(cand);
    } else {
      best.gp_seconds = cand.gp_seconds;
      best.dp_seconds = cand.dp_seconds;
      best.total_seconds = cand.total_seconds;
    }
  }
  return best;
}

FlowResult run_prior_work(const netlist::Circuit& circuit,
                          PriorWorkOptions opts) {
  const auto t0 = Clock::now();
  gp::PriorAnalyticalGlobalPlacer placer(circuit, opts.gp);
  const gp::GpResult gpr = placer.run();
  const double gp_s = seconds_since(t0);

  const auto t1 = Clock::now();
  const legal::TwoStageLpLegalizer dp(circuit, opts.dp);
  legal::TwoStageResult dpr = dp.place(gpr.positions);
  APLACE_CHECK_MSG(dpr.ok(), "prior-work detailed placement "
                                 << to_string(dpr.status) << " on circuit '"
                                 << circuit.name() << "'");
  const double dp_s = seconds_since(t1);

  FlowResult out{std::move(dpr.placement), {}, gp_s, dp_s, gp_s + dp_s};
  out.quality = netlist::Evaluator(circuit).evaluate(out.placement);
  return out;
}

FlowResult run_sa(const netlist::Circuit& circuit, SaFlowOptions opts) {
  const auto t0 = Clock::now();
  sa::SaPlacer placer(circuit, opts.sa);
  sa::SaResult sar = placer.place();
  const double total = seconds_since(t0);

  FlowResult out{std::move(sar.placement), {}, 0, 0, total};
  out.quality = netlist::Evaluator(circuit).evaluate(out.placement);
  return out;
}

}  // namespace aplace::core
