#include "core/flow.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/thread_pool.hpp"
#include "numeric/rng.hpp"
#include "obs/metrics.hpp"

namespace aplace::core {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// A limited externally shared deadline (batch driver) takes precedence over
// the per-flow seconds budget.
Deadline make_deadline(const Deadline& shared, double budget_seconds) {
  if (shared.limited()) return shared;
  return budget_seconds > 0 ? Deadline::after_seconds(budget_seconds)
                            : Deadline{};
}

// Placement requires a finalized circuit, but error results must be
// constructible even for inputs validate() rejected before finalization.
// Those carry a placement over this minimal static circuit instead; a
// non-ok status tells callers not to read it.
const netlist::Circuit& placeholder_circuit() {
  static const netlist::Circuit c = [] {
    netlist::Circuit cc("invalid-input-placeholder");
    cc.add_device("dummy", netlist::DeviceType::Nmos, 1.0, 1.0);
    cc.finalize();
    return cc;
  }();
  return c;
}

netlist::Placement safe_placement(const netlist::Circuit& c) {
  return netlist::Placement(c.finalized() ? c : placeholder_circuit());
}

// Shared per-flow boilerplate: stamp timing and evaluate quality once the
// final placement is known (previously duplicated in every flow).
FlowResult assemble_result(const netlist::Circuit& circuit,
                           netlist::Placement placement, double gp_seconds,
                           double dp_seconds) {
  FlowResult out{std::move(placement), {}, gp_seconds, dp_seconds,
                 gp_seconds + dp_seconds};
  obs::Span span("flow/evaluate");
  out.quality = netlist::Evaluator(circuit).evaluate(out.placement);
  return out;
}

FlowResult error_result(const netlist::Circuit& circuit, aplace::Status status,
                        double total_seconds) {
  FlowResult out{safe_placement(circuit), {}, 0, 0, total_seconds};
  out.status = std::move(status);
  return out;
}

// Flow boundary: pre-flight validation, then run the flow body with every
// escaped exception converted to a structured status carrying the circuit
// name and flow stage instead of crashing the caller. A cancelled flow
// reports Cancelled — unless the body still finished with a legal placement
// (the cancel arrived too late to matter), which stays Ok so completed work
// is never thrown away.
template <class Fn>
FlowResult run_guarded(const char* flow_name, const netlist::Circuit& circuit,
                       const base::CancelToken& cancel, Fn&& body) {
  const auto t0 = Clock::now();
  if (cancel.cancelled()) {
    return error_result(
        circuit,
        aplace::Status::cancelled("flow cancelled before it started")
            .add_context(std::string(flow_name) + " flow on circuit '" +
                         circuit.name() + "'"),
        seconds_since(t0));
  }
  if (aplace::Status s = netlist::validate(circuit); !s.ok()) {
    s.add_context(std::string(flow_name) + " pre-flight validation of '" +
                  circuit.name() + "'");
    return error_result(circuit, std::move(s), seconds_since(t0));
  }
  // The flow root span starts a fresh trace tree (Root::New) so this
  // flow's subtree can be pulled out of the collector by root id — even
  // when the flow itself runs inside a batch job span.
  std::uint64_t span_root = 0;
  auto timed_body = [&]() -> FlowResult {
    obs::Span span(flow_name, obs::Span::Root::New);
    span_root = span.root_id();
    obs::counter("flow/runs").inc();
    return body();
  };
  auto attach_spans = [&](FlowResult& out) {
    if (span_root != 0) {
      out.spans = obs::SpanCollector::global().take_events_for_root(span_root);
    }
  };
  try {
    FlowResult out = timed_body();
    out.total_seconds = seconds_since(t0);
    attach_spans(out);
    if (!out.status.ok() && cancel.cancelled() &&
        out.status.code() != aplace::StatusCode::Cancelled) {
      // The failure happened while a cancellation was pending: the job was
      // truncated, not genuinely infeasible, so report it as Cancelled (a
      // non-terminal outcome the batch journal will re-run on resume).
      out.status = aplace::Status::cancelled("flow stopped by cancellation")
                       .add_context("pre-cancel status: " +
                                    out.status.to_string())
                       .add_context(std::string(flow_name) +
                                    " flow on circuit '" + circuit.name() +
                                    "'");
    }
    return out;
  } catch (const aplace::CheckError& e) {
    obs::counter("flow/errors").inc();
    FlowResult out = error_result(
        circuit,
        aplace::Status::internal(std::string("unhandled check failure: ") +
                                 e.what())
            .add_context(std::string(flow_name) + " flow on circuit '" +
                         circuit.name() + "'"),
        seconds_since(t0));
    attach_spans(out);  // the root span closed during unwinding
    return out;
  } catch (const std::exception& e) {
    obs::counter("flow/errors").inc();
    FlowResult out = error_result(
        circuit,
        aplace::Status::internal(std::string("unhandled exception: ") +
                                 e.what())
            .add_context(std::string(flow_name) + " flow on circuit '" +
                         circuit.name() + "'"),
        seconds_since(t0));
    attach_spans(out);
    return out;
  }
}

// Replace the GP hand-off with NaN (fault injection): exercises the
// sanitize-and-recover path of every legalizer.
void poison(numeric::Vec& positions) {
  std::fill(positions.begin(), positions.end(),
            std::numeric_limits<double>::quiet_NaN());
}

struct LegalizeOutcome {
  netlist::Placement placement;
  FallbackLevel level = FallbackLevel::None;
  aplace::Status status{};  ///< Ok iff `placement` is legal
};

// The legalization fallback chain. Levels, in order:
//   1. primary ILP (when `ilp` != nullptr)    -> FallbackLevel::None
//   2. rounded LP relaxation (flipping off)   -> FallbackLevel::RoundedLp
//   3. two-stage LP                           -> `two_stage_level`
//   4. greedy shift                           -> FallbackLevel::GreedyShift
// Every level runs behind a try/catch and its output is re-checked against
// the evaluator (a solver claiming Optimal does not get a free pass). The
// greedy level ignores the deadline on purpose: it is cheap and the chain
// must end with an answer. When all levels fail the returned status carries
// one trail note per failed level.
LegalizeOutcome legalize_chain(
    const std::shared_ptr<const netlist::CompiledCircuit>& compiled,
    std::span<const double> positions, const legal::IlpOptions* ilp,
    legal::TwoStageOptions two_opts, FallbackLevel two_stage_level,
    const Deadline& deadline, const base::CancelToken& cancel,
    const FaultInjection& inject) {
  const netlist::Circuit& circuit = compiled->circuit();
  LegalizeOutcome out{netlist::Placement(circuit)};
  const netlist::Evaluator eval(circuit);
  std::vector<std::string> failures;

  // Cancellation stops the chain between levels: unlike an expired deadline
  // (where the cheap greedy level still delivers an answer), a cancelled
  // batch wants its threads back, and the journal re-runs the job anyway.
  auto cancelled_out = [&]() {
    out.status = aplace::Status::cancelled(
        "legalization cancelled before the chain finished");
    for (std::string& f : failures) out.status.add_context(std::move(f));
    return std::move(out);
  };
  if (cancel.cancelled()) return cancelled_out();

  // Run one level: `attempt` returns a Status and fills `pl` on success.
  // Returns true when the level delivered a *legal* placement.
  // `span_name` labels the level's span and counters in the trace.
  auto attempt_level = [&](FallbackLevel level, const char* what,
                           const char* span_name, bool injected_failure,
                           auto&& attempt) {
    if (injected_failure) {
      failures.push_back(std::string(what) +
                         ": infeasible: fault injection forced failure");
      return false;
    }
    obs::Span span(span_name);
    obs::counter("legal/attempts").inc();
    netlist::Placement pl(circuit);
    aplace::Status s;
    try {
      s = attempt(pl);
    } catch (const aplace::CheckError& e) {
      s = aplace::Status::internal(std::string("check failure: ") + e.what());
    } catch (const std::exception& e) {
      s = aplace::Status::internal(std::string("exception: ") + e.what());
    }
    if (s.ok() && !eval.evaluate(pl).legal(1e-6)) {
      s = aplace::Status::infeasible(
          "solver reported success but the placement violates constraints");
    }
    if (s.ok()) {
      obs::counter(std::string(span_name) + "/success").inc();
      out.placement = std::move(pl);
      out.level = level;
      return true;
    }
    // Keep the latest failed attempt for diagnostics (the greedy level's
    // best-effort iterate when everything fails).
    obs::counter(std::string(span_name) + "/failed").inc();
    out.placement = std::move(pl);
    failures.push_back(std::string(what) + ": " + s.to_string());
    return false;
  };

  if (ilp != nullptr) {
    const bool primary_ok = attempt_level(
        FallbackLevel::None, "ILP legalization", "legal/ilp",
        inject.fail_primary_dp, [&](netlist::Placement& pl) {
          legal::IlpOptions o = *ilp;
          o.deadline = deadline;
          o.cancel = cancel;
          legal::IlpResult r =
              legal::IlpDetailedPlacer(compiled, o).place(positions);
          if (r.ok()) pl = std::move(r.placement);
          return r.outcome;
        });
    if (primary_ok) return out;
    if (cancel.cancelled()) return cancelled_out();

    const bool rounded_ok = attempt_level(
        FallbackLevel::RoundedLp, "rounded-LP legalization",
        "legal/rounded-lp", inject.fail_rounded_lp,
        [&](netlist::Placement& pl) {
          // Rounded LP relaxation: drop the flipping binaries and the
          // refine/reshape iterations so a single LP (plus the MILP
          // rounding fallback) decides the placement.
          legal::IlpOptions o = *ilp;
          o.deadline = deadline;
          o.cancel = cancel;
          o.enable_flipping = false;
          o.refine_rounds = 1;
          o.reshape_attempts = 0;
          legal::IlpResult r =
              legal::IlpDetailedPlacer(compiled, o).place(positions);
          if (r.ok()) pl = std::move(r.placement);
          return r.outcome;
        });
    if (rounded_ok) return out;
    if (cancel.cancelled()) return cancelled_out();
  }

  const bool two_ok = attempt_level(
      two_stage_level, "two-stage LP legalization", "legal/two-stage-lp",
      inject.fail_two_stage, [&](netlist::Placement& pl) {
        two_opts.deadline = deadline;
        two_opts.cancel = cancel;
        legal::TwoStageResult r =
            legal::TwoStageLpLegalizer(compiled, two_opts).place(positions);
        if (r.ok()) pl = std::move(r.placement);
        return r.outcome;
      });
  if (two_ok) return out;
  if (cancel.cancelled()) return cancelled_out();

  const bool greedy_ok = attempt_level(
      FallbackLevel::GreedyShift, "greedy-shift legalization",
      "legal/greedy-shift", false, [&](netlist::Placement& pl) {
        legal::GreedyShiftResult r =
            legal::GreedyShiftLegalizer(circuit).place(positions);
        pl = std::move(r.placement);  // best-effort iterate even on failure
        return r.outcome;
      });
  if (greedy_ok) return out;

  out.level = FallbackLevel::GreedyShift;
  out.status = aplace::Status::infeasible(
      "no legalization level produced a legal placement for '" +
      circuit.name() + "'");
  for (std::string& f : failures) out.status.add_context(std::move(f));
  return out;
}

}  // namespace

FlowResult run_eplace_a(const netlist::Circuit& circuit, EPlaceAOptions opts) {
  return run_guarded("ePlace-A", circuit, opts.cancel, [&]() -> FlowResult {
    APLACE_CHECK(opts.candidates >= 1);
    const Deadline deadline =
        make_deadline(opts.deadline, opts.time_budget_seconds);
    const std::size_t num_cands = static_cast<std::size_t>(opts.candidates);
    // One compiled snapshot serves every candidate's GP and every legalizer
    // level; through the batch cache it also serves every other job on this
    // circuit.
    const std::shared_ptr<const netlist::CompiledCircuit> compiled =
        compile_or_fetch(opts.compile_cache, circuit);

    // Each candidate runs the full GP + legalization pipeline on its own
    // RNG stream split from the master seed: candidate k's stream does not
    // depend on how many candidates run (the old additive derivation,
    // seed + 48*k, aliased across runs and across the GP's internal
    // multi-start streams).
    auto run_candidate = [&](std::size_t k) -> FlowResult {
      obs::Span cand_span("flow/candidate");
      gp::EPlaceGpOptions gopts = opts.gp;
      gopts.seed = numeric::split_seed(opts.gp.seed, k);
      gopts.deadline = deadline;
      gopts.cancel = opts.cancel;

      const auto t0 = Clock::now();
      gp::GpResult gpr = [&] {
        obs::Span gp_span("gp/run");
        return gp::EPlaceGlobalPlacer(compiled, gopts).run();
      }();
      if (opts.inject.poison_gp) poison(gpr.positions);
      const double gp_s = seconds_since(t0);

      const auto t1 = Clock::now();
      LegalizeOutcome leg = [&] {
        obs::Span dp_span("flow/legalize");
        return legalize_chain(compiled, gpr.positions, &opts.dp, {},
                              FallbackLevel::TwoStageLp, deadline, opts.cancel,
                              opts.inject);
      }();
      const double dp_s = seconds_since(t1);

      FlowResult cand =
          assemble_result(circuit, std::move(leg.placement), gp_s, dp_s);
      cand.status = std::move(leg.status);
      cand.fallback = leg.level;
      cand.gp_diverged = gpr.diverged || opts.inject.poison_gp ||
                         !numeric::all_finite(gpr.positions);
      cand.deadline_hit = gpr.deadline_hit || deadline.expired();
      cand.gp_trace = std::move(gpr.trace);
      return cand;
    };

    std::vector<std::optional<FlowResult>> cands(num_cands);
    base::ThreadPool& pool = base::ThreadPool::global();
    if (pool.num_threads() > 1 && num_cands > 1) {
      // Concurrent candidates; each still honors the shared deadline
      // internally. Failures inside a task surface through the group and
      // are converted to a structured status by run_guarded.
      base::ThreadPool::TaskGroup group(pool);
      for (std::size_t k = 1; k < num_cands; ++k) {
        group.run([&, k] { cands[k] = run_candidate(k); });
      }
      cands[0] = run_candidate(0);
      group.wait();
    } else {
      for (std::size_t k = 0; k < num_cands; ++k) {
        // Later candidates are optional work; the first one runs even on an
        // expired budget so the flow still ends with a (degraded) answer.
        if (k > 0 && deadline.expired()) break;
        cands[k] = run_candidate(k);
      }
    }

    // Ordered best-of reduction (candidate index order): identical result
    // regardless of which thread finished first. Quality scales come from
    // the first legal candidate, as in the sequential original.
    FlowResult best{netlist::Placement(circuit), {}, 0, 0, 0};
    best.status = aplace::Status::internal("no candidate was evaluated");
    double best_score = std::numeric_limits<double>::infinity();
    double scale_area = 1.0, scale_hpwl = 1.0;
    bool have_ok = false, have_scales = false, skipped = false;
    double gp_total = 0, dp_total = 0;
    bool any_deadline_hit = false;
    // Candidate traces are folded after the reduction: the winner keeps its
    // weights/samples, eval counts and seconds sum over every candidate.
    std::vector<gp::TermTrace> traces;
    traces.reserve(cands.size());
    std::size_t best_trace = 0;

    for (std::optional<FlowResult>& cand_opt : cands) {
      if (!cand_opt.has_value()) {
        skipped = true;  // sequential path ran out of budget
        continue;
      }
      FlowResult& cand = *cand_opt;
      gp_total += cand.gp_seconds;
      dp_total += cand.dp_seconds;
      any_deadline_hit |= cand.deadline_hit;
      traces.push_back(std::move(cand.gp_trace));

      if (cand.ok()) {
        if (!have_scales) {
          scale_area = std::max(cand.quality.area, 1e-9);
          scale_hpwl = std::max(cand.quality.hpwl, 1e-9);
          have_scales = true;
        }
        const double score =
            cand.quality.area / scale_area + cand.quality.hpwl / scale_hpwl;
        if (!have_ok || score < best_score) {
          best_score = score;
          best = std::move(cand);
          best_trace = traces.size() - 1;
          have_ok = true;
        }
      } else if (!have_ok) {
        // No legal candidate yet: keep the structured failure.
        best = std::move(cand);
        best_trace = traces.size() - 1;
      }
    }
    if (!traces.empty()) {
      best.gp_trace = std::move(traces[best_trace]);
      for (std::size_t i = 0; i < traces.size(); ++i) {
        if (i != best_trace) best.gp_trace.merge_counts(traces[i]);
      }
    }
    gp::publish_trace_metrics(best.gp_trace);
    best.gp_seconds = gp_total;  // summed across candidates
    best.dp_seconds = dp_total;
    best.total_seconds = gp_total + dp_total;
    best.deadline_hit = any_deadline_hit || skipped;
    return best;
  });
}

FlowResult run_prior_work(const netlist::Circuit& circuit,
                          PriorWorkOptions opts) {
  return run_guarded("prior-work", circuit, opts.cancel,
                     [&]() -> FlowResult {
    const Deadline deadline =
        make_deadline(opts.deadline, opts.time_budget_seconds);
    const std::shared_ptr<const netlist::CompiledCircuit> compiled =
        compile_or_fetch(opts.compile_cache, circuit);
    gp::NtuGpOptions gopts = opts.gp;
    gopts.deadline = deadline;
    gopts.cancel = opts.cancel;

    const auto t0 = Clock::now();
    gp::GpResult gpr = [&] {
      obs::Span gp_span("gp/run");
      return gp::PriorAnalyticalGlobalPlacer(compiled, gopts).run();
    }();
    if (opts.inject.poison_gp) poison(gpr.positions);
    const double gp_s = seconds_since(t0);

    const auto t1 = Clock::now();
    // The two-stage LP is this flow's *primary* legalizer (FallbackLevel
    // None on success); forcing it to fail via fail_primary_dp keeps the
    // injection knob uniform across flows.
    FaultInjection inject = opts.inject;
    inject.fail_two_stage |= inject.fail_primary_dp;
    LegalizeOutcome leg = [&] {
      obs::Span dp_span("flow/legalize");
      return legalize_chain(compiled, gpr.positions, nullptr, opts.dp,
                            FallbackLevel::None, deadline, opts.cancel,
                            inject);
    }();
    const double dp_s = seconds_since(t1);

    FlowResult out =
        assemble_result(circuit, std::move(leg.placement), gp_s, dp_s);
    out.status = std::move(leg.status);
    out.fallback = leg.level;
    out.gp_diverged = gpr.diverged || opts.inject.poison_gp ||
                      !numeric::all_finite(gpr.positions);
    out.deadline_hit = gpr.deadline_hit || deadline.expired();
    out.gp_trace = std::move(gpr.trace);
    gp::publish_trace_metrics(out.gp_trace);
    return out;
  });
}

FlowResult run_sa(const netlist::Circuit& circuit, SaFlowOptions opts) {
  return run_guarded("SA", circuit, opts.cancel, [&]() -> FlowResult {
    const Deadline deadline =
        make_deadline(opts.deadline, opts.time_budget_seconds);
    const std::shared_ptr<const netlist::CompiledCircuit> compiled =
        compile_or_fetch(opts.compile_cache, circuit);
    sa::SaOptions sopts = opts.sa;
    sopts.deadline = deadline;
    sopts.cancel = opts.cancel;

    const auto t0 = Clock::now();
    sa::SaResult sar = [&] {
      obs::Span sa_span("sa/place");
      return sa::SaPlacer(compiled, sopts).place();
    }();
    const double sa_s = seconds_since(t0);

    FlowResult out =
        assemble_result(circuit, std::move(sar.placement), 0.0, sa_s);
    out.deadline_hit = sar.deadline_hit;
    out.sa_moves_per_second = sar.moves_per_second;
    out.sa_net_eval_ratio = sar.eval_stats.net_eval_ratio();
    if (out.quality.legal(1e-6) && !opts.inject.fail_primary_dp) {
      return out;
    }

    // Annealing left residual constraint violations (alignment/ordering are
    // only penalized, not enforced): repair with the analytical fallback
    // chain starting from the SA positions.
    const std::size_t n = circuit.num_devices();
    std::vector<double> pos(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      const geom::Point p = out.placement.position(DeviceId{i});
      pos[i] = p.x;
      pos[n + i] = p.y;
    }
    const auto t1 = Clock::now();
    FaultInjection inject = opts.inject;
    inject.fail_two_stage |= inject.fail_primary_dp;
    LegalizeOutcome leg = [&] {
      obs::Span dp_span("flow/legalize");
      return legalize_chain(compiled, pos, nullptr, {},
                            FallbackLevel::TwoStageLp, deadline, opts.cancel,
                            inject);
    }();
    const double dp_s = seconds_since(t1);

    FlowResult repaired =
        assemble_result(circuit, std::move(leg.placement), 0.0, sa_s + dp_s);
    repaired.status = std::move(leg.status);
    repaired.fallback = leg.level;
    repaired.deadline_hit = out.deadline_hit || deadline.expired();
    repaired.sa_moves_per_second = out.sa_moves_per_second;
    repaired.sa_net_eval_ratio = out.sa_net_eval_ratio;
    return repaired;
  });
}

}  // namespace aplace::core
