#!/usr/bin/env python3
"""Ratchet-only line-coverage gate against a committed watermark.

Reads a gcovr JSON summary (gcovr --json-summary) and compares its
aggregate line coverage against the percentage stored in the watermark
file (ci/coverage-watermark.txt). The gate only ratchets upward:

  * coverage below the watermark (minus --slack, default 0.25 points to
    absorb run-to-run flakiness from timing-dependent branches) fails;
  * coverage at or above the watermark passes;
  * coverage more than --slack above the watermark prints a reminder to
    raise it — use --update to rewrite the watermark file to the measured
    value (rounded down to 0.01) in the same run.

The watermark file holds a single number: the line-coverage percentage
(0-100). Exit status: 0 clean, 1 below watermark, 2 usage/IO error.

Usage:
  check_coverage.py --summary cov-summary.json \
      --watermark ci/coverage-watermark.txt
  check_coverage.py --summary ... --watermark ... --update
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path


def read_percent(summary_path: Path) -> float:
    with open(summary_path, encoding="utf-8") as f:
        doc = json.load(f)
    # gcovr's --json-summary writes line_percent directly; fall back to
    # computing it from the raw counts so older gcovr versions also work.
    if "line_percent" in doc:
        return float(doc["line_percent"])
    covered, total = doc.get("line_covered"), doc.get("line_total")
    if covered is None or total is None or total == 0:
        raise ValueError(f"{summary_path}: no line-coverage fields found")
    return 100.0 * float(covered) / float(total)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--summary", required=True, type=Path,
                        help="gcovr --json-summary output")
    parser.add_argument("--watermark", required=True, type=Path,
                        help="file holding the committed watermark percent")
    parser.add_argument("--slack", type=float, default=0.25,
                        help="allowed dip below the watermark in percentage "
                        "points (default 0.25)")
    parser.add_argument("--update", action="store_true",
                        help="raise the watermark file to the measured value "
                        "when coverage improved")
    args = parser.parse_args()

    try:
        percent = read_percent(args.summary)
        watermark = float(args.watermark.read_text().strip())
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    print(f"line coverage {percent:.2f}% (watermark {watermark:.2f}%, "
          f"slack {args.slack:.2f})")
    if percent < watermark - args.slack:
        print(f"FAIL: coverage fell {watermark - percent:.2f} points below "
              f"the watermark; add tests or (for deliberate removals) lower "
              f"{args.watermark}", file=sys.stderr)
        return 1
    if percent > watermark + args.slack:
        if args.update:
            new_mark = math.floor(percent * 100) / 100
            args.watermark.write_text(f"{new_mark:.2f}\n")
            print(f"watermark ratcheted up to {new_mark:.2f}%")
        else:
            print(f"note: coverage beats the watermark by "
                  f"{percent - watermark:.2f} points — ratchet it with "
                  f"--update")
    print("coverage gate ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
