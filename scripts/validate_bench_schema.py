#!/usr/bin/env python3
"""Validate BENCH_*.json files against the committed aplace-bench-v1 schema.

Dependency-free on purpose (CI runners and the dev container both lack a
jsonschema package): implements exactly the JSON Schema keywords the
committed schema uses — type, const, required, properties, items,
additionalProperties (schema form), minimum — and rejects schemas that use
anything else, so a schema edit can't silently validate nothing.

Usage:
  validate_bench_schema.py --schema ci/bench-schema.json FILE [FILE ...]
  validate_bench_schema.py --schema ci/bench-schema.json --dir bench-out

Exit status: 0 all valid, 1 validation failures, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

KNOWN_KEYWORDS = {
    "$comment", "type", "const", "required", "properties", "items",
    "additionalProperties", "minimum",
}

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: (isinstance(v, int) and not isinstance(v, bool))
    or (isinstance(v, float) and v.is_integer()),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def check_schema_subset(schema: dict, where: str = "$schema") -> None:
    """Reject schema keywords the validator does not implement."""
    unknown = set(schema) - KNOWN_KEYWORDS
    if unknown:
        raise ValueError(
            f"{where}: unsupported schema keyword(s) {sorted(unknown)}; "
            f"extend validate_bench_schema.py before using them"
        )
    for key in ("items", "additionalProperties"):
        if isinstance(schema.get(key), dict):
            check_schema_subset(schema[key], f"{where}.{key}")
    for name, sub in schema.get("properties", {}).items():
        check_schema_subset(sub, f"{where}.properties.{name}")


def validate(value, schema: dict, path: str, errors: list[str]) -> None:
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return

    if "type" in schema:
        types = schema["type"]
        if isinstance(types, str):
            types = [types]
        if not any(TYPE_CHECKS[t](value) for t in types):
            errors.append(
                f"{path}: expected {'/'.join(types)}, "
                f"got {type(value).__name__}"
            )
            return

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                errors.append(f"{path}: missing required key {req!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, sub_value in value.items():
            if key in props:
                validate(sub_value, props[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                validate(sub_value, extra, f"{path}.{key}", errors)

    if isinstance(value, list) and isinstance(schema.get("items"), dict):
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--schema", required=True, type=Path)
    parser.add_argument("--dir", type=Path,
                        help="validate every BENCH_*.json in this directory")
    parser.add_argument("files", nargs="*", type=Path)
    args = parser.parse_args()

    files = list(args.files)
    if args.dir:
        files.extend(sorted(args.dir.glob("BENCH_*.json")))
    if not files:
        print("error: no files to validate", file=sys.stderr)
        return 2

    try:
        with open(args.schema, encoding="utf-8") as f:
            schema = json.load(f)
        check_schema_subset(schema)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    bad = 0
    for path in files:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL {path}: unreadable: {e}")
            bad += 1
            continue
        errors: list[str] = []
        validate(doc, schema, "$", errors)
        if errors:
            bad += 1
            print(f"FAIL {path}:")
            for e in errors[:20]:
                print(f"  {e}")
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more")
        else:
            print(f"ok   {path}")

    print(f"{len(files) - bad}/{len(files)} files valid")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
