#!/usr/bin/env python3
"""Gate CI on the machine-readable bench output (BENCH_*.json).

Compares a directory of freshly produced bench JSON files against a
committed baseline directory. Runs are matched by (bench, circuit, flow);
for each matched pair the checker fails when:

  * wall time regresses by more than --time-tol (default 15%) beyond an
    absolute slack (--time-slack, default 0.1 s, which keeps millisecond-
    scale runs from tripping the gate on scheduler noise);
  * HPWL or area regresses by more than --quality-tol (default 2%, to
    absorb cross-compiler floating-point differences);
  * a throughput rate (moves_per_sec on SA rows; higher is better) drops
    by more than --rate-tol (default 35%; rates are noisier than end-to-end
    wall times on shared CI runners);
  * a run that was legal in the baseline is illegal now;
  * a run that was ok in the baseline is not ok now;
  * a baseline run is missing from the current results;
  * a metric the baseline gates on (wall_seconds, hpwl, area,
    moves_per_sec) is present in the baseline run but absent from the
    matching current run — a silently dropped metric is a hard failure,
    never a skip, so schema drift can't blind the gate;
  * a top-level "metrics" entry ending in "_speedup" (higher is better,
    e.g. the scalar-vs-SIMD kernel ratios) drops below
    baseline * (1 - --rate-tol), or is present in the baseline but
    missing from the current file;
  * a --metric-floor NAME=VALUE requirement is violated: the named
    metric must be present somewhere in the current results and be
    >= VALUE. Floors are absolute contracts (e.g. "the SIMD wirelength
    kernel stays at least 2x faster than its scalar twin"), independent
    of whatever the baseline happened to record.

New runs (present now, absent from the baseline) are reported but do not
fail the gate, so adding a bench doesn't require a lockstep baseline
update. Exit status: 0 clean, 1 regressions found, 2 usage/IO error.

--refresh rewrites the baseline instead of gating: every BENCH_*.json in
--current is schema-validated and copied into --baseline, and baseline
files whose bench no longer produces output are deleted. Use it when a
deliberate performance or protocol change moves the numbers.

Usage:
  check_bench_regression.py --baseline ci/bench-baseline --current out/
  check_bench_regression.py --baseline ... --current ... --time-tol 0.2
  check_bench_regression.py --baseline ci/bench-baseline --current out/ \
      --refresh
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "aplace-bench-v1"


def load_runs(
    directory: Path,
) -> tuple[dict[tuple[str, str, str], dict], dict[tuple[str, str], float]]:
    """Load every BENCH_*.json in a directory.

    Returns (runs, metrics): runs maps (bench, circuit, flow) -> run
    record, metrics maps (bench, metric_name) -> value for the top-level
    "metrics" object of each file.
    """
    runs: dict[tuple[str, str, str], dict] = {}
    metrics: dict[tuple[str, str], float] = {}
    files = sorted(directory.glob("BENCH_*.json"))
    if not files:
        raise FileNotFoundError(f"no BENCH_*.json files in {directory}")
    for path in files:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        if doc.get("schema") != SCHEMA:
            raise ValueError(f"{path}: unexpected schema {doc.get('schema')!r}")
        bench = doc["bench"]
        for run in doc.get("runs", []):
            key = (bench, run["circuit"], run["flow"])
            if key in runs:
                raise ValueError(f"{path}: duplicate run {key}")
            runs[key] = run
        for name, value in doc.get("metrics", {}).items():
            metrics[(bench, name)] = value
    return runs, metrics


def check(
    baseline: dict[tuple[str, str, str], dict],
    current: dict[tuple[str, str, str], dict],
    time_tol: float,
    time_slack: float,
    quality_tol: float,
    rate_tol: float,
) -> list[str]:
    failures: list[str] = []
    for key, base in sorted(baseline.items()):
        name = "/".join(key)
        cur = current.get(key)
        if cur is None:
            failures.append(f"{name}: run missing from current results")
            continue

        bt, ct = base.get("wall_seconds"), cur.get("wall_seconds")
        if bt is not None and ct is None:
            failures.append(
                f"{name}: wall_seconds present in baseline but missing "
                f"from current run"
            )
        elif bt is not None:
            limit = bt * (1.0 + time_tol) + time_slack
            if ct > limit:
                failures.append(
                    f"{name}: wall time {ct:.3f}s > {limit:.3f}s "
                    f"(baseline {bt:.3f}s, tol {time_tol:.0%} + {time_slack}s)"
                )

        for metric in ("hpwl", "area"):
            bv, cv = base.get(metric), cur.get(metric)
            # Timing-only rows carry 0 quality; skip them. A baseline value
            # with no current counterpart is a hard failure, not a skip.
            if not bv:
                continue
            if cv is None:
                failures.append(
                    f"{name}: {metric} present in baseline but missing "
                    f"from current run"
                )
                continue
            if cv > bv * (1.0 + quality_tol):
                failures.append(
                    f"{name}: {metric} {cv:.4g} worse than baseline "
                    f"{bv:.4g} (+{(cv / bv - 1):.1%}, tol {quality_tol:.0%})"
                )

        br, cr = base.get("moves_per_sec"), cur.get("moves_per_sec")
        if br and cr is None:
            failures.append(
                f"{name}: moves_per_sec present in baseline but missing "
                f"from current run"
            )
        elif br:
            floor = br * (1.0 - rate_tol)
            if cr < floor:
                failures.append(
                    f"{name}: moves_per_sec {cr:.0f} < {floor:.0f} "
                    f"(baseline {br:.0f}, tol {rate_tol:.0%})"
                )

        if base.get("legal") and not cur.get("legal"):
            failures.append(f"{name}: was legal in baseline, now illegal")
        if base.get("ok") and not cur.get("ok"):
            failures.append(f"{name}: was ok in baseline, now failed")

    for key in sorted(set(current) - set(baseline)):
        print(f"note: new run not in baseline: {'/'.join(key)}")
    return failures


def check_metrics(
    baseline: dict[tuple[str, str], float],
    current: dict[tuple[str, str], float],
    rate_tol: float,
    floors: dict[str, float],
) -> list[str]:
    """Gate the top-level per-bench metrics objects."""
    failures: list[str] = []
    for (bench, metric), bv in sorted(baseline.items()):
        if not metric.endswith("_speedup"):
            continue
        name = f"{bench}/metrics/{metric}"
        cv = current.get((bench, metric))
        if cv is None:
            failures.append(
                f"{name}: present in baseline but missing from current "
                f"results"
            )
            continue
        floor = bv * (1.0 - rate_tol)
        if cv < floor:
            failures.append(
                f"{name}: speedup {cv:.2f}x < {floor:.2f}x "
                f"(baseline {bv:.2f}x, tol {rate_tol:.0%})"
            )

    by_name = {metric: value for (_, metric), value in current.items()}
    for metric, floor in sorted(floors.items()):
        cv = by_name.get(metric)
        if cv is None:
            failures.append(
                f"metric floor {metric}>={floor:g}: metric missing from "
                f"current results"
            )
        elif cv < floor:
            failures.append(
                f"metric floor violated: {metric} = {cv:.2f} < {floor:g}"
            )
    return failures


def refresh(baseline_dir: Path, current_dir: Path) -> int:
    """Rewrite the baseline from the current results (deliberate rebase)."""
    files = sorted(current_dir.glob("BENCH_*.json"))
    if not files:
        print(f"error: no BENCH_*.json files in {current_dir}",
              file=sys.stderr)
        return 2
    # Validate before touching the baseline so a half-written current
    # directory can't wipe a good one.
    for path in files:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        if doc.get("schema") != SCHEMA:
            print(f"error: {path}: unexpected schema {doc.get('schema')!r}",
                  file=sys.stderr)
            return 2
    baseline_dir.mkdir(parents=True, exist_ok=True)
    fresh_names = {p.name for p in files}
    for stale in sorted(baseline_dir.glob("BENCH_*.json")):
        if stale.name not in fresh_names:
            stale.unlink()
            print(f"removed stale baseline {stale.name}")
    for path in files:
        (baseline_dir / path.name).write_bytes(path.read_bytes())
        print(f"refreshed {path.name}")
    print(f"baseline {baseline_dir} now tracks {len(files)} bench file(s)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path)
    parser.add_argument("--current", required=True, type=Path)
    parser.add_argument("--time-tol", type=float, default=0.15,
                        help="relative wall-time tolerance (default 0.15)")
    parser.add_argument("--time-slack", type=float, default=0.1,
                        help="absolute wall-time slack in seconds "
                        "(default 0.1)")
    parser.add_argument("--quality-tol", type=float, default=0.02,
                        help="relative HPWL/area tolerance (default 0.02)")
    parser.add_argument("--rate-tol", type=float, default=0.35,
                        help="relative throughput-rate tolerance; rates are "
                        "higher-is-better (default 0.35)")
    parser.add_argument("--metric-floor", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="absolute floor for a top-level metric; the "
                        "metric must exist and be >= VALUE (repeatable)")
    parser.add_argument("--refresh", action="store_true",
                        help="rewrite --baseline from --current instead of "
                        "gating (validates schemas, prunes stale files)")
    args = parser.parse_args()

    if args.refresh:
        return refresh(args.baseline, args.current)

    floors: dict[str, float] = {}
    for spec in args.metric_floor:
        name, sep, value = spec.partition("=")
        if not sep or not name:
            print(f"error: bad --metric-floor {spec!r} (want NAME=VALUE)",
                  file=sys.stderr)
            return 2
        try:
            floors[name] = float(value)
        except ValueError:
            print(f"error: bad --metric-floor value {spec!r}",
                  file=sys.stderr)
            return 2

    try:
        baseline, base_metrics = load_runs(args.baseline)
        current, cur_metrics = load_runs(args.current)
    except (OSError, ValueError, KeyError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    failures = check(baseline, current, args.time_tol, args.time_slack,
                     args.quality_tol, args.rate_tol)
    failures += check_metrics(base_metrics, cur_metrics, args.rate_tol,
                              floors)
    print(f"checked {len(baseline)} baseline runs against "
          f"{len(current)} current runs")
    if failures:
        print(f"\n{len(failures)} regression(s):")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
