#!/usr/bin/env bash
# SIGKILL-and-resume end-to-end check for the crash-safe batch driver.
#
# 1. Runs aplace_batch without a journal to produce a timing-free reference
#    report (--report-out excludes wall times on purpose).
# 2. Launches the journaled batch and SIGKILLs it at several delays — at
#    each delay the journal is torn at whatever byte the kill landed on.
# 3. Resumes each killed journal and byte-compares its report against the
#    reference: completed jobs restore bit-identically, the rest re-run
#    under the same seeds, so any divergence is a bug.
#
# usage: kill_resume_test.sh <path-to-aplace_batch> [workdir]
set -u

BATCH="${1:?usage: kill_resume_test.sh <path-to-aplace_batch> [workdir]}"
WORK="${2:-$(mktemp -d)}"
mkdir -p "$WORK"

ARGS=(--circuits Adder,CC-OTA,Comp1 --flows eplace-a,sa --fast --threads 2)
DELAYS=(0.05 0.15 0.3 0.6)

echo "== reference run =="
"$BATCH" "${ARGS[@]}" --report-out "$WORK/reference.txt" || {
  echo "FAIL: reference run failed"; exit 1;
}

fail=0
for delay in "${DELAYS[@]}"; do
  jdir="$WORK/kill_$delay"
  rm -rf "$jdir"; mkdir -p "$jdir"
  journal="$jdir/run.jsonl"

  "$BATCH" "${ARGS[@]}" --journal "$journal" >/dev/null 2>&1 &
  pid=$!
  sleep "$delay"
  kill -KILL "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null
  lines=$(wc -l < "$journal" 2>/dev/null || echo 0)
  echo "== killed after ${delay}s ($lines journal lines) =="

  if ! "$BATCH" "${ARGS[@]}" --journal "$journal" --resume \
       --report-out "$jdir/resumed.txt"; then
    echo "FAIL: resume after ${delay}s kill exited non-zero"
    fail=1
    continue
  fi
  if ! diff -u "$WORK/reference.txt" "$jdir/resumed.txt"; then
    echo "FAIL: resumed report differs from reference (delay ${delay}s)"
    fail=1
  else
    echo "ok: resumed report identical to reference"
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "PASS: all kill/resume runs bit-identical to the reference"
fi
exit "$fail"
