// Fuzz harness for the hardened .acirc / .aplc text parsers.
//
// Property under test: circuit_from_text / placement_from_text never throw
// and never crash on arbitrary bytes — they either return a value or a
// structured InvalidInput status. When a parse succeeds, serializing and
// re-parsing must be a fixed point (serialize(parse(serialize(x))) ==
// serialize(x)); a violation traps so the fuzzer records it as a crash.
//
// Built with -DAPLACE_FUZZ=ON. Under Clang this is a libFuzzer target
// (first input byte selects circuit vs placement grammar); under other
// compilers it degrades to a corpus replayer: each argv entry is read and
// fed through both parsers.

#include <cstddef>
#include <cstdint>
#include <string>

#include "io/netlist_io.hpp"
#include "netlist/circuit.hpp"

namespace {

const aplace::netlist::Circuit& fixed_circuit() {
  using namespace aplace::netlist;
  static const Circuit circuit = [] {
    Circuit c("fuzz");
    const aplace::DeviceId a = c.add_device("A", DeviceType::Nmos, 2.0, 1.0);
    const aplace::DeviceId b = c.add_device("B", DeviceType::Pmos, 2.0, 1.0);
    const aplace::DeviceId r = c.add_device("R", DeviceType::Resistor, 1.0, 3.0);
    c.add_net("n1", {c.add_center_pin(a, "d"), c.add_center_pin(b, "d")});
    c.add_net("n2", {c.add_center_pin(a, "g"), c.add_center_pin(r, "p")});
    c.finalize();
    return c;
  }();
  return circuit;
}

void check_circuit_roundtrip(const std::string& text) {
  aplace::Result<aplace::netlist::Circuit> parsed =
      aplace::io::circuit_from_text(text);
  if (!parsed.ok()) return;
  const std::string out = aplace::io::circuit_to_text(parsed.value());
  aplace::Result<aplace::netlist::Circuit> again =
      aplace::io::circuit_from_text(out);
  if (!again.ok() || aplace::io::circuit_to_text(again.value()) != out) {
    __builtin_trap();  // accepted input failed to round-trip bit-exactly
  }
}

void check_placement_roundtrip(const std::string& text) {
  const aplace::netlist::Circuit& c = fixed_circuit();
  aplace::Result<aplace::netlist::Placement> parsed =
      aplace::io::placement_from_text(c, text);
  if (!parsed.ok()) return;
  const std::string out = aplace::io::placement_to_text(parsed.value());
  aplace::Result<aplace::netlist::Placement> again =
      aplace::io::placement_from_text(c, out);
  if (!again.ok() || aplace::io::placement_to_text(again.value()) != out) {
    __builtin_trap();
  }
}

void run_one(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return;
  const std::string text(reinterpret_cast<const char*>(data + 1), size - 1);
  if (data[0] % 2 == 0) {
    check_circuit_roundtrip(text);
  } else {
    check_placement_roundtrip(text);
  }
}

}  // namespace

#if defined(APLACE_FUZZ_LIBFUZZER)

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  run_one(data, size);
  return 0;
}

#else  // corpus replayer fallback for compilers without libFuzzer

#include <cstdio>
#include <vector>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::FILE* f = std::fopen(argv[i], "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      bytes.insert(bytes.end(), buf, buf + n);
    }
    std::fclose(f);
    run_one(bytes.data(), bytes.size());
    // Also drive both grammars over the raw file so hand-written .acirc /
    // .aplc corpora exercise the parsers without the selector byte.
    const std::string text(bytes.begin(), bytes.end());
    check_circuit_roundtrip(text);
    check_placement_roundtrip(text);
    std::printf("ok %s (%zu bytes)\n", argv[i], bytes.size());
  }
  return 0;
}

#endif
