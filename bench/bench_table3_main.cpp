// Paper Table III: main conventional (performance-oblivious) comparison —
// simulated annealing vs. prior analytical work [11] vs. ePlace-A on all
// ten circuits; area, HPWL, runtime plus average ratios.

#include "bench_common.hpp"

namespace {

// Paper reference rows (area um^2, HPWL um, runtime s) for context.
struct PaperRow {
  double sa_a, sa_h, sa_t, pw_a, pw_h, pw_t, ep_a, ep_h, ep_t;
};
const std::vector<std::pair<std::string, PaperRow>> kPaper = {
    {"Adder", {49.8, 10.2, 1.43, 49.8, 10.2, 0.02, 49.8, 10.2, 0.02}},
    {"CC-OTA", {84.8, 37.2, 17.12, 100.3, 37.4, 0.16, 81.6, 34.1, 0.22}},
    {"Comp1", {124.2, 43.2, 26.07, 130.0, 53.5, 0.54, 102.1, 41.9, 1.49}},
    {"Comp2", {141.4, 87.9, 71.87, 251.3, 110.1, 1.60, 130.9, 80.8, 2.73}},
    {"CM-OTA1", {139.9, 37.7, 27.52, 139.3, 36.4, 0.51, 114.1, 28.1, 0.19}},
    {"CM-OTA2", {165.9, 66.6, 52.12, 229.0, 93.5, 0.18, 161.4, 61.2, 0.75}},
    {"SCF", {2735.9, 429.4, 52.06, 2158.9, 486.0, 10.87, 1873.9, 416.0,
             10.44}},
    {"VGA", {120.4, 131.2, 15.66, 155.4, 119.8, 1.24, 116.4, 85.2, 3.64}},
    {"VCO1", {315.7, 202.3, 126.65, 315.7, 201.1, 1.27, 315.7, 181.7, 3.12}},
    {"VCO2", {516.4, 327.0, 88.71, 516.4, 344.2, 0.61, 516.4, 304.1, 0.94}},
};

}  // namespace

int main() {
  using namespace aplace;
  bench::header("Table III: conventional formulation — SA vs prior[11] vs ePlace-A");
  std::printf(
      "%-8s | %26s | %26s | %26s\n", "",
      "Simulated annealing", "Prior analytical [11]", "ePlace-A");
  std::printf("%-8s | %8s %8s %8s | %8s %8s %8s | %8s %8s %8s\n", "Design",
              "Area", "HPWL", "Time(s)", "Area", "HPWL", "Time(s)", "Area",
              "HPWL", "Time(s)");

  bench::JsonReport json("table3_main");
  std::vector<double> sa_a, sa_h, sa_t, pw_a, pw_h, pw_t, ep_a, ep_h, ep_t;
  for (const std::string& name : circuits::testcase_names()) {
    circuits::TestCase tc = circuits::make_testcase(name);
    const netlist::Circuit& c = tc.circuit;

    core::SaFlowOptions so;
    so.sa = bench::paper_sa_options();
    const core::FlowResult sa = core::run_sa(c, so);
    const core::PriorWorkOptions po = bench::paper_prior_options();
    const core::FlowResult pw = core::run_prior_work(c, po);
    const core::EPlaceAOptions eo = bench::paper_eplace_options();
    const core::FlowResult ep = core::run_eplace_a(c, eo);
    json.add_flow(name, "sa", so.sa.seed, sa);
    json.add_flow(name, "prior-work", 0, pw);
    json.add_flow(name, "eplace-a", eo.gp.seed, ep);

    std::printf(
        "%-8s | %8.1f %8.1f %8.2f | %8.1f %8.1f %8.2f | %8.1f %8.1f %8.2f%s\n",
        name.c_str(), sa.area(), sa.hpwl(), sa.total_seconds, pw.area(),
        pw.hpwl(), pw.total_seconds, ep.area(), ep.hpwl(), ep.total_seconds,
        (sa.legal() && pw.legal() && ep.legal()) ? "" : "  [ILLEGAL]");
    std::fflush(stdout);

    sa_a.push_back(sa.area());   sa_h.push_back(sa.hpwl());
    sa_t.push_back(sa.total_seconds);
    pw_a.push_back(pw.area());   pw_h.push_back(pw.hpwl());
    pw_t.push_back(pw.total_seconds);
    ep_a.push_back(ep.area());   ep_h.push_back(ep.hpwl());
    ep_t.push_back(ep.total_seconds);
  }

  std::printf("\nAvg ratios vs ePlace-A (paper: SA 1.11/1.14/55.2x, "
              "prior 1.25/1.24/0.80x):\n");
  std::printf("  SA      : area %.2fx  hpwl %.2fx  runtime %.1fx\n",
              bench::geomean_ratio(sa_a, ep_a),
              bench::geomean_ratio(sa_h, ep_h),
              bench::geomean_ratio(sa_t, ep_t));
  std::printf("  prior   : area %.2fx  hpwl %.2fx  runtime %.2fx\n",
              bench::geomean_ratio(pw_a, ep_a),
              bench::geomean_ratio(pw_h, ep_h),
              bench::geomean_ratio(pw_t, ep_t));

  std::printf("\nPaper reference rows (GF12nm testbed):\n");
  for (const auto& [name, r] : kPaper) {
    std::printf("%-8s | %8.1f %8.1f %8.2f | %8.1f %8.1f %8.2f | %8.1f %8.1f %8.2f\n",
                name.c_str(), r.sa_a, r.sa_h, r.sa_t, r.pw_a, r.pw_h, r.pw_t,
                r.ep_a, r.ep_h, r.ep_t);
  }
  json.add_metric("sa_vs_eplace_area", bench::geomean_ratio(sa_a, ep_a));
  json.add_metric("sa_vs_eplace_hpwl", bench::geomean_ratio(sa_h, ep_h));
  json.add_metric("sa_vs_eplace_runtime", bench::geomean_ratio(sa_t, ep_t));
  json.add_metric("prior_vs_eplace_area", bench::geomean_ratio(pw_a, ep_a));
  json.add_metric("prior_vs_eplace_hpwl", bench::geomean_ratio(pw_h, ep_h));
  json.write();
  return 0;
}
