// Paper Table IV: detailed-placement head-to-head. Both detailed placers
// start from identical ePlace-A global placement solutions; ePlace-A's
// single-stage ILP with flipping should win HPWL over the two-stage LP of
// [11]. Runtime covers detailed placement only.

#include <chrono>

#include "bench_common.hpp"
#include "gp/eplace_gp.hpp"
#include "legal/ilp_detailed.hpp"
#include "legal/two_stage_lp.hpp"

int main() {
  using namespace aplace;
  using Clock = std::chrono::steady_clock;
  bench::header(
      "Table IV: detailed placement of [11] vs ePlace-A (same GP input)");
  std::printf("%-8s | %20s | %20s\n", "", "two-stage LP [11]",
              "ePlace-A ILP");
  std::printf("%-8s | %6s %6s %6s | %6s %6s %6s\n", "Design", "Area", "HPWL",
              "t(s)", "Area", "HPWL", "t(s)");

  bench::JsonReport json("table4_detailed");
  // Paper uses VCO1, Comp1, SCF.
  for (const char* name : {"VCO1", "Comp1", "SCF"}) {
    circuits::TestCase tc = circuits::make_testcase(name);
    const netlist::Circuit& c = tc.circuit;

    gp::EPlaceGlobalPlacer gpp(c, bench::paper_eplace_options().gp);
    const gp::GpResult gpr = gpp.run();

    const auto t0 = Clock::now();
    legal::TwoStageResult two = legal::TwoStageLpLegalizer(c).place(
        gpr.positions);
    const double t_two = std::chrono::duration<double>(Clock::now() - t0)
                             .count();

    const auto t1 = Clock::now();
    legal::IlpResult ilp = legal::IlpDetailedPlacer(c).place(gpr.positions);
    const double t_ilp = std::chrono::duration<double>(Clock::now() - t1)
                             .count();

    const netlist::Evaluator ev(c);
    const netlist::QualityReport q2 = ev.evaluate(two.placement);
    const netlist::QualityReport qi = ev.evaluate(ilp.placement);
    json.add_run(name, "dp-two-stage-lp", 0, t_two, q2.hpwl, q2.area,
                 q2.legal());
    json.add_run(name, "dp-ilp", 0, t_ilp, qi.hpwl, qi.area, qi.legal());
    std::printf("%-8s | %6.1f %6.1f %6.2f | %6.1f %6.1f %6.2f%s\n", name,
                q2.area, q2.hpwl, t_two, qi.area, qi.hpwl, t_ilp,
                (q2.legal() && qi.legal()) ? "" : "  [ILLEGAL]");
    std::fflush(stdout);
  }
  json.write();
  std::printf(
      "\nPaper reference ([11] | ePlace-A, area/HPWL/runtime):\n"
      "VCO1     | 315.7 188.1 0.95 | 315.7 181.7 1.07\n"
      "Comp1    | 102.1  45.3 0.42 | 102.1  41.9 0.75\n"
      "SCF      | 1873.9 436.7 1.91 | 1873.9 416.0 2.32\n"
      "Expected shape: same/beaten area, smaller HPWL for the ILP (mostly\n"
      "from device flipping).\n");
  return 0;
}
