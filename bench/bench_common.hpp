#pragma once
// Shared plumbing for the table/figure reproduction harnesses.
//
// Every bench binary regenerates one table or figure from the paper: it
// runs the relevant flows with the protocol options below, prints the
// measured rows next to the paper's reference values, and summarizes the
// geometric-mean ratios the paper reports.
//
// Environment:
//   APLACE_QUICK=1   shrink budgets (smoke-test mode; numbers not
//                    publication-grade but every code path still runs).

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <string>
#include <vector>

#include "circuits/testcases.hpp"
#include "core/flow.hpp"
#include "core/perf_flow.hpp"

namespace aplace::bench {

inline bool quick_mode() {
  const char* q = std::getenv("APLACE_QUICK");
  return q != nullptr && q[0] != '\0' && q[0] != '0';
}

/// SA options matching the paper's "practical runtime limit" protocol:
/// seconds-to-tens-of-seconds per circuit, well past its convergence knee.
inline sa::SaOptions paper_sa_options() {
  sa::SaOptions o;
  if (quick_mode()) {
    o.max_moves = 20000;
  } else {
    o.cooling = 0.9985;
    o.moves_per_temp_per_block = 150;
  }
  return o;
}

/// SA options for the performance-driven variant ([19]): every move
/// evaluates the GNN, so the schedule is shorter (as in the paper, where
/// perf-driven SA runs ~3x the analytical runtime, not ~50x).
inline sa::SaOptions paper_sa_perf_options() {
  sa::SaOptions o;
  if (quick_mode()) {
    o.max_moves = 6000;
  } else {
    o.cooling = 0.995;
    o.moves_per_temp_per_block = 60;
  }
  return o;
}

inline core::EPlaceAOptions paper_eplace_options() {
  core::EPlaceAOptions o;
  if (quick_mode()) {
    o.candidates = 1;
    o.gp.num_starts = 1;
  }
  return o;
}

inline core::PriorWorkOptions paper_prior_options() { return {}; }

inline core::DatasetOptions paper_dataset_options() {
  core::DatasetOptions d;
  if (quick_mode()) {
    d.random_samples = 120;
    d.optimized_samples = 4;
    d.analytic_samples = 16;
    d.sa_moves_per_sample = 500;
  } else {
    d.random_samples = 820;   // "over 1000 training samples" in total
    d.optimized_samples = 120;
    d.analytic_samples = 80;
    d.sa_moves_per_sample = 2500;
  }
  return d;
}

inline gnn::TrainOptions paper_train_options() {
  gnn::TrainOptions t;
  t.epochs = quick_mode() ? 120 : 400;
  t.lr = 1e-2;
  return t;
}

// ---- formatting -------------------------------------------------------------

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Geometric mean of ratios a_i / b_i.
inline double geomean_ratio(const std::vector<double>& a,
                            const std::vector<double>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += std::log(std::max(a[i], 1e-12) / std::max(b[i], 1e-12));
  }
  return std::exp(s / static_cast<double>(a.size()));
}

}  // namespace aplace::bench
