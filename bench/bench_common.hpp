#pragma once
// Shared plumbing for the table/figure reproduction harnesses.
//
// Every bench binary regenerates one table or figure from the paper: it
// runs the relevant flows with the protocol options below, prints the
// measured rows next to the paper's reference values, and summarizes the
// geometric-mean ratios the paper reports.
//
// Environment:
//   APLACE_QUICK=1   shrink budgets (smoke-test mode; numbers not
//                    publication-grade but every code path still runs).

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "base/thread_pool.hpp"
#include "circuits/testcases.hpp"
#include "core/flow.hpp"
#include "core/perf_flow.hpp"
#include "gp/objective.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace aplace::bench {

inline bool quick_mode() {
  const char* q = std::getenv("APLACE_QUICK");
  return q != nullptr && q[0] != '\0' && q[0] != '0';
}

/// SA options matching the paper's "practical runtime limit" protocol:
/// seconds-to-tens-of-seconds per circuit, well past its convergence knee.
inline sa::SaOptions paper_sa_options() {
  sa::SaOptions o;
  if (quick_mode()) {
    o.max_moves = 20000;
  } else {
    o.cooling = 0.9985;
    o.moves_per_temp_per_block = 150;
  }
  return o;
}

/// SA options for the performance-driven variant ([19]): every move
/// evaluates the GNN, so the schedule is shorter (as in the paper, where
/// perf-driven SA runs ~3x the analytical runtime, not ~50x).
inline sa::SaOptions paper_sa_perf_options() {
  sa::SaOptions o;
  if (quick_mode()) {
    o.max_moves = 6000;
  } else {
    o.cooling = 0.995;
    o.moves_per_temp_per_block = 60;
  }
  return o;
}

inline core::EPlaceAOptions paper_eplace_options() {
  core::EPlaceAOptions o;
  if (quick_mode()) {
    o.candidates = 1;
    o.gp.num_starts = 1;
  }
  return o;
}

inline core::PriorWorkOptions paper_prior_options() { return {}; }

inline core::DatasetOptions paper_dataset_options() {
  core::DatasetOptions d;
  if (quick_mode()) {
    d.random_samples = 120;
    d.optimized_samples = 4;
    d.analytic_samples = 16;
    d.sa_moves_per_sample = 500;
  } else {
    d.random_samples = 820;   // "over 1000 training samples" in total
    d.optimized_samples = 120;
    d.analytic_samples = 80;
    d.sa_moves_per_sample = 2500;
  }
  return d;
}

inline gnn::TrainOptions paper_train_options() {
  gnn::TrainOptions t;
  t.epochs = quick_mode() ? 120 : 400;
  t.lr = 1e-2;
  return t;
}

// ---- formatting -------------------------------------------------------------

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Human-readable per-term objective breakdown of one analytical GP run
/// (from the TermTrace the flows thread through FlowResult::gp_trace).
inline void print_term_trace(const std::string& label,
                             const gp::TermTrace& trace) {
  if (trace.empty()) {
    std::printf("%s: no per-term trace recorded\n", label.c_str());
    return;
  }
  std::printf("---- %s: per-term objective breakdown ----\n", label.c_str());
  std::printf("%-16s %-10s %8s %12s %8s %14s %12s\n", "term", "cost", "evals",
              "seconds", "time%", "last value", "last weight");
  const double total = trace.total_seconds();
  for (const auto& t : trace.terms) {
    std::printf("%-16s %-10s %8llu %12.6f %7.1f%% %14.5g %12.5g\n",
                t.name.c_str(), gp::to_string(t.cost),
                static_cast<unsigned long long>(t.evals), t.seconds,
                total > 0 ? 100.0 * t.seconds / total : 0.0, t.value,
                t.weight);
  }
  std::printf("%-16s %-10s %8s %12.6f %7.1f%%  (%zu samples, stride %d)\n",
              "total", "", "", total, 100.0, trace.samples.size(),
              trace.sample_stride);
}

/// Geometric mean of ratios a_i / b_i.
inline double geomean_ratio(const std::vector<double>& a,
                            const std::vector<double>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += std::log(std::max(a[i], 1e-12) / std::max(b[i], 1e-12));
  }
  return std::exp(s / static_cast<double>(a.size()));
}

// ---- machine-readable output ------------------------------------------------
// Next to the human-readable tables, every bench binary records its runs in
// a JsonReport and writes BENCH_<name>.json ($APLACE_BENCH_JSON_DIR when
// set, else the working directory). The CI quick-bench job uploads these
// files and gates on them via scripts/check_bench_regression.py, so the
// schema below ("aplace-bench-v1") is a contract: one record per flow run
// with wall time, quality, legality, fallback level, plus the thread count
// and seed the run used.

class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  /// Record one placement-flow run. SA flows carry a nonzero moves/sec
  /// throughput, emitted as an extra "moves_per_sec" key (rate-gated by the
  /// regression checker; 0 = not an SA run, key omitted).
  void add_flow(const std::string& circuit, const std::string& flow,
                std::uint64_t seed, const core::FlowResult& r) {
    runs_.push_back(Run{circuit, flow, seed, r.total_seconds, r.hpwl(),
                        r.area(), r.legal(), core::to_string(r.fallback),
                        r.ok(), r.sa_moves_per_second});
    add_spans(circuit, flow, r.spans);
  }

  /// Record one flow's span tree; emitted as a per-stage rollup under the
  /// additive top-level "spans" key, and as a full Chrome trace file when
  /// APLACE_TRACE_DIR is set. add_flow calls this automatically.
  void add_spans(const std::string& circuit, const std::string& flow,
                 const std::vector<obs::SpanEvent>& spans) {
    if (spans.empty()) return;
    span_rows_.push_back(SpanRow{circuit, flow, spans});
  }

  /// Record a raw row (legalizer-only comparisons, perf-driven flows, ...).
  void add_run(const std::string& circuit, const std::string& flow,
               std::uint64_t seed, double wall_seconds, double hpwl,
               double area, bool legal) {
    runs_.push_back(
        Run{circuit, flow, seed, wall_seconds, hpwl, area, legal, "none",
            legal, 0.0});
  }

  /// Record an SA kernel row: quality plus a moves/sec throughput rate.
  void add_sa_run(const std::string& circuit, const std::string& flow,
                  std::uint64_t seed, double wall_seconds, double hpwl,
                  double area, bool legal, double moves_per_sec) {
    runs_.push_back(Run{circuit, flow, seed, wall_seconds, hpwl, area, legal,
                        "none", legal, moves_per_sec});
  }

  /// Record a raw timed row (micro-kernels, batch wall times, ...).
  void add_timing(const std::string& circuit, const std::string& what,
                  double wall_seconds) {
    runs_.push_back(Run{circuit, what, 0, wall_seconds, 0.0, 0.0, true,
                        "none", true, 0.0});
  }

  /// Scalar summary metric (speedups, geomean ratios, ...). Informational:
  /// the regression gate only checks per-run rows.
  void add_metric(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
  }

  /// Record the per-term objective trace of one analytical GP run; emitted
  /// under the additive top-level "term_traces" key (the regression gate
  /// only reads "runs", so this is observability-only).
  void add_term_trace(const std::string& circuit, const std::string& flow,
                      const gp::TermTrace& trace) {
    if (trace.empty()) return;
    traces_.push_back(TraceRow{circuit, flow, trace});
  }

  /// Write BENCH_<bench>.json. Returns false (with a warning on stderr)
  /// when the file cannot be written; benches still exit 0 in that case.
  bool write() const {
    std::string dir;
    if (const char* d = std::getenv("APLACE_BENCH_JSON_DIR");
        d != nullptr && d[0] != '\0') {
      dir = std::string(d) + "/";
    }
    const std::string path = dir + "BENCH_" + bench_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    // `threads` is the pool's *resolved* size (what actually ran);
    // `threads_requested` is the pre-clamp constructor argument. They
    // differ when e.g. APLACE_THREADS=0 resolves to 1.
    out << "{\n"
        << "  \"schema\": \"aplace-bench-v1\",\n"
        << "  \"bench\": \"" << escaped(bench_) << "\",\n"
        << "  \"threads\": " << base::ThreadPool::global().num_threads()
        << ",\n"
        << "  \"threads_requested\": "
        << base::ThreadPool::global().requested_threads() << ",\n"
        << "  \"quick\": " << (quick_mode() ? "true" : "false") << ",\n"
        << "  \"runs\": [";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      const Run& r = runs_[i];
      out << (i ? ",\n    " : "\n    ") << "{\"circuit\": \""
          << escaped(r.circuit) << "\", \"flow\": \"" << escaped(r.flow)
          << "\", \"seed\": " << r.seed << ", \"wall_seconds\": "
          << fmt(r.wall_seconds) << ", \"hpwl\": " << fmt(r.hpwl)
          << ", \"area\": " << fmt(r.area) << ", \"legal\": "
          << (r.legal ? "true" : "false") << ", \"fallback\": \""
          << escaped(r.fallback) << "\", \"ok\": " << (r.ok ? "true" : "false");
      if (r.moves_per_sec > 0) {
        out << ", \"moves_per_sec\": " << fmt(r.moves_per_sec);
      }
      out << "}";
    }
    out << "\n  ],\n  \"term_traces\": [";
    for (std::size_t i = 0; i < traces_.size(); ++i) {
      const TraceRow& tr = traces_[i];
      out << (i ? ",\n    " : "\n    ") << "{\"circuit\": \""
          << escaped(tr.circuit) << "\", \"flow\": \"" << escaped(tr.flow)
          << "\", \"samples\": " << tr.trace.samples.size()
          << ", \"sample_stride\": " << tr.trace.sample_stride
          << ", \"terms\": [";
      for (std::size_t j = 0; j < tr.trace.terms.size(); ++j) {
        const gp::TermStats& t = tr.trace.terms[j];
        out << (j ? ", " : "") << "{\"name\": \"" << escaped(t.name)
            << "\", \"cost\": \"" << gp::to_string(t.cost)
            << "\", \"evals\": " << t.evals << ", \"seconds\": "
            << fmt(t.seconds) << ", \"value\": " << fmt(t.value)
            << ", \"grad_norm\": " << fmt(t.grad_norm) << ", \"weight\": "
            << fmt(t.weight) << "}";
      }
      out << "]}";
    }
    out << "\n  ],\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      out << (i ? ",\n    " : "\n    ") << "\"" << escaped(metrics_[i].first)
          << "\": " << fmt(metrics_[i].second);
    }
    out << "\n  },";

    // Per-flow stage rollups (additive key; the regression gate only reads
    // "runs"). One entry per recorded flow: spans aggregated by name in
    // first-seen order, so readers get a compact stage-time breakdown.
    out << "\n  \"spans\": [";
    for (std::size_t i = 0; i < span_rows_.size(); ++i) {
      const SpanRow& sr = span_rows_[i];
      std::vector<std::pair<std::string, std::pair<std::uint64_t, double>>>
          rollup;
      for (const obs::SpanEvent& ev : sr.events) {
        auto it = rollup.begin();
        for (; it != rollup.end(); ++it) {
          if (it->first == ev.name) break;
        }
        if (it == rollup.end()) {
          rollup.emplace_back(ev.name, std::make_pair(std::uint64_t{0}, 0.0));
          it = rollup.end() - 1;
        }
        it->second.first += 1;
        it->second.second += ev.dur_seconds;
      }
      out << (i ? ",\n    " : "\n    ") << "{\"circuit\": \""
          << escaped(sr.circuit) << "\", \"flow\": \"" << escaped(sr.flow)
          << "\", \"stages\": [";
      for (std::size_t j = 0; j < rollup.size(); ++j) {
        out << (j ? ", " : "") << "{\"name\": \"" << escaped(rollup[j].first)
            << "\", \"count\": " << rollup[j].second.first
            << ", \"seconds\": " << fmt(rollup[j].second.second) << "}";
      }
      out << "]}";
    }
    out << "\n  ],";

    // Merged registry snapshot (additive key): empty object when
    // observability is disabled.
    out << "\n  \"observability\": ";
    if (obs::enabled()) {
      out << indented(obs::MetricsRegistry::global().scrape().to_json(2));
    } else {
      out << "{}";
    }
    out << "\n}\n";

    write_trace_files();
    return static_cast<bool>(out);
  }

 private:
  struct Run {
    std::string circuit;
    std::string flow;
    std::uint64_t seed;
    double wall_seconds;
    double hpwl;
    double area;
    bool legal;
    std::string fallback;
    bool ok;
    double moves_per_sec;  ///< SA throughput; 0 = not an SA row (omitted)
  };

  struct TraceRow {
    std::string circuit;
    std::string flow;
    gp::TermTrace trace;
  };

  struct SpanRow {
    std::string circuit;
    std::string flow;
    std::vector<obs::SpanEvent> events;
  };

  /// Re-indent an embedded pretty-printed JSON value by one report level
  /// (two spaces after every newline) so it nests cleanly in the output.
  static std::string indented(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      out.push_back(c);
      if (c == '\n') out += "  ";
    }
    return out;
  }

  /// When APLACE_TRACE_DIR is set, write one Chrome trace_event file per
  /// recorded flow (TRACE_<bench>_<circuit>_<flow>.json) for loading into
  /// chrome://tracing or Perfetto. Best effort: failures warn, never fail
  /// the bench.
  void write_trace_files() const {
    const char* d = std::getenv("APLACE_TRACE_DIR");
    if (d == nullptr || d[0] == '\0' || span_rows_.empty()) return;
    for (const SpanRow& sr : span_rows_) {
      std::string name = bench_ + "_" + sr.circuit + "_" + sr.flow;
      for (char& c : name) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
              c == '_')) {
          c = '_';
        }
      }
      const std::string path = std::string(d) + "/TRACE_" + name + ".json";
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
        continue;
      }
      out << obs::chrome_trace_json(sr.events) << "\n";
    }
  }

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  static std::string fmt(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
  }

  std::string bench_;
  std::vector<Run> runs_;
  std::vector<TraceRow> traces_;
  std::vector<SpanRow> span_rows_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace aplace::bench
