// google-benchmark microbenchmarks of the computational kernels: spectral
// Poisson solve, WA wirelength gradient, LP solve, sequence-pair packing,
// GNN forward+backward. Useful for tracking performance regressions of the
// inner loops that dominate the flows.

#include <benchmark/benchmark.h>

#include "circuits/testcases.hpp"
#include "density/electro.hpp"
#include "gnn/graph.hpp"
#include "gnn/model.hpp"
#include "numeric/rng.hpp"
#include "sa/sequence_pair.hpp"
#include "solver/lp.hpp"
#include "wirelength/smooth_wl.hpp"

namespace {

using namespace aplace;

std::vector<double> spread(const netlist::Circuit& c) {
  const std::size_t n = c.num_devices();
  std::vector<double> v(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 2.0 * static_cast<double>(i % 6) + 1;
    v[n + i] = 2.0 * static_cast<double>(i / 6) + 1;
  }
  return v;
}

void BM_ElectroSolve(benchmark::State& state) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  const auto bins = static_cast<std::size_t>(state.range(0));
  density::ElectroDensity ed(tc.circuit, {0, 0, 16, 16}, bins, bins, 0.85);
  const std::vector<double> v = spread(tc.circuit);
  std::vector<double> g(v.size(), 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed.value_and_grad(v, g, 1.0));
  }
}
BENCHMARK(BM_ElectroSolve)->Arg(16)->Arg(32)->Arg(64);

void BM_WaWirelengthGrad(benchmark::State& state) {
  circuits::TestCase tc = circuits::make_testcase("SCF");
  wirelength::WaWirelength wl(tc.circuit);
  wl.set_gamma(1.0);
  const std::vector<double> v = spread(tc.circuit);
  std::vector<double> g(v.size(), 0.0);
  for (auto _ : state) {
    std::fill(g.begin(), g.end(), 0.0);
    benchmark::DoNotOptimize(wl.value_and_grad(v, g));
  }
}
BENCHMARK(BM_WaWirelengthGrad);

void BM_LpSolveChain(benchmark::State& state) {
  // Placement-like separation-chain LP of the given size.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    solver::LpProblem p;
    std::vector<int> xs;
    for (int i = 0; i < n; ++i) {
      xs.push_back(p.add_variable(1, solver::kInf, i == n - 1 ? 1.0 : 0.0));
    }
    for (int i = 0; i + 1 < n; ++i) {
      p.add_constraint({{xs[i], 1}, {xs[i + 1], -1}}, solver::Relation::LessEq,
                       -2.0);
    }
    benchmark::DoNotOptimize(solve_lp(p));
  }
}
BENCHMARK(BM_LpSolveChain)->Arg(20)->Arg(60)->Arg(120);

void BM_SequencePairPack(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sa::SequencePair sp(n);
  numeric::Rng rng(1);
  sp.shuffle(rng);
  std::vector<double> w(n), h(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = rng.uniform(1, 4);
    h[i] = rng.uniform(1, 4);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sp.pack(w, h));
  }
}
BENCHMARK(BM_SequencePairPack)->Arg(10)->Arg(30)->Arg(60);

void BM_GnnForwardBackward(benchmark::State& state) {
  circuits::TestCase tc = circuits::make_testcase("CM-OTA2");
  gnn::CircuitGraph graph(tc.circuit, 15.0);
  gnn::GnnModel model;
  numeric::Rng rng(2);
  model.initialize(rng);
  const numeric::Matrix x = graph.features(spread(tc.circuit));
  numeric::Matrix xg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.phi_and_input_grad(graph.adjacency(), x, xg));
  }
}
BENCHMARK(BM_GnnForwardBackward);

}  // namespace

BENCHMARK_MAIN();
