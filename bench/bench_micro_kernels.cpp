// google-benchmark microbenchmarks of the computational kernels: spectral
// Poisson solve, WA wirelength gradient, LP solve, sequence-pair packing,
// GNN forward+backward. Useful for tracking performance regressions of the
// inner loops that dominate the flows.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "base/simd.hpp"
#include "bench_common.hpp"
#include "circuits/testcases.hpp"
#include "density/electro.hpp"
#include "gnn/graph.hpp"
#include "gnn/model.hpp"
#include "netlist/compiled.hpp"
#include "netlist/evaluator.hpp"
#include "numeric/fft.hpp"
#include "numeric/rng.hpp"
#include "numeric/spectral.hpp"
#include "sa/annealer.hpp"
#include "sa/sequence_pair.hpp"
#include "solver/lp.hpp"
#include "wirelength/smooth_wl.hpp"

namespace {

using namespace aplace;

std::vector<double> spread(const netlist::Circuit& c) {
  const std::size_t n = c.num_devices();
  std::vector<double> v(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 2.0 * static_cast<double>(i % 6) + 1;
    v[n + i] = 2.0 * static_cast<double>(i / 6) + 1;
  }
  return v;
}

void BM_ElectroSolve(benchmark::State& state) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  const auto bins = static_cast<std::size_t>(state.range(0));
  density::ElectroDensity ed(tc.circuit, {0, 0, 16, 16}, bins, bins, 0.85);
  const std::vector<double> v = spread(tc.circuit);
  std::vector<double> g(v.size(), 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed.value_and_grad(v, g, 1.0));
  }
}
BENCHMARK(BM_ElectroSolve)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Full 2D spectral Poisson solve (analysis + potential + both field
// syntheses) on one random density matrix, FFT path vs. dense-basis oracle.
numeric::Matrix random_density(std::size_t bins) {
  numeric::Matrix m(bins, bins);
  numeric::Rng rng(7);
  for (double& x : m.data()) x = rng.uniform(0, 1);
  return m;
}

void spectral_solve_fft(const numeric::Matrix& m,
                        const numeric::spectral::Basis& bx,
                        const numeric::spectral::Basis& by,
                        numeric::Matrix& psi, numeric::Matrix& ex,
                        numeric::Matrix& ey) {
  using namespace numeric::spectral;
  std::copy(m.data().begin(), m.data().end(), psi.data().begin());
  dct2d_inplace(psi, bx, by);
  std::copy(psi.data().begin(), psi.data().end(), ex.data().begin());
  std::copy(psi.data().begin(), psi.data().end(), ey.data().begin());
  idct2d_inplace(psi, bx, by);
  isxcy2d_inplace(ex, bx, by);
  icxsy2d_inplace(ey, bx, by);
}

void spectral_solve_naive(const numeric::Matrix& m,
                          const numeric::spectral::Basis& bx,
                          const numeric::spectral::Basis& by,
                          numeric::Matrix& psi, numeric::Matrix& ex,
                          numeric::Matrix& ey) {
  using namespace numeric::spectral;
  const numeric::Matrix a = dct2d_naive(m, bx, by);
  psi = idct2d_naive(a, bx, by);
  ex = isxcy2d_naive(a, bx, by);
  ey = icxsy2d_naive(a, bx, by);
}

void BM_SpectralSolveFft(benchmark::State& state) {
  const auto bins = static_cast<std::size_t>(state.range(0));
  const numeric::spectral::Basis bx(bins), by(bins);
  numeric::Matrix m = random_density(bins);
  numeric::Matrix psi(bins, bins), ex(bins, bins), ey(bins, bins);
  for (auto _ : state) {
    spectral_solve_fft(m, bx, by, psi, ex, ey);
    benchmark::DoNotOptimize(psi.data().data());
  }
}
BENCHMARK(BM_SpectralSolveFft)->Arg(64)->Arg(128)->Arg(256);

void BM_SpectralSolveNaive(benchmark::State& state) {
  const auto bins = static_cast<std::size_t>(state.range(0));
  const numeric::spectral::Basis bx(bins), by(bins);
  const numeric::Matrix m = random_density(bins);
  numeric::Matrix psi(bins, bins), ex(bins, bins), ey(bins, bins);
  for (auto _ : state) {
    spectral_solve_naive(m, bx, by, psi, ex, ey);
    benchmark::DoNotOptimize(psi.data().data());
  }
}
BENCHMARK(BM_SpectralSolveNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_WaWirelengthGrad(benchmark::State& state) {
  circuits::TestCase tc = circuits::make_testcase("SCF");
  wirelength::WaWirelength wl(tc.circuit);
  wl.set_gamma(1.0);
  const std::vector<double> v = spread(tc.circuit);
  std::vector<double> g(v.size(), 0.0);
  for (auto _ : state) {
    std::fill(g.begin(), g.end(), 0.0);
    benchmark::DoNotOptimize(wl.value_and_grad(v, g));
  }
}
BENCHMARK(BM_WaWirelengthGrad);

void BM_LpSolveChain(benchmark::State& state) {
  // Placement-like separation-chain LP of the given size.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    solver::LpProblem p;
    std::vector<int> xs;
    for (int i = 0; i < n; ++i) {
      xs.push_back(p.add_variable(1, solver::kInf, i == n - 1 ? 1.0 : 0.0));
    }
    for (int i = 0; i + 1 < n; ++i) {
      p.add_constraint({{xs[i], 1}, {xs[i + 1], -1}}, solver::Relation::LessEq,
                       -2.0);
    }
    benchmark::DoNotOptimize(solve_lp(p));
  }
}
BENCHMARK(BM_LpSolveChain)->Arg(20)->Arg(60)->Arg(120);

void BM_SequencePairPack(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sa::SequencePair sp(n);
  numeric::Rng rng(1);
  sp.shuffle(rng);
  std::vector<double> w(n), h(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = rng.uniform(1, 4);
    h[i] = rng.uniform(1, 4);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sp.pack(w, h));
  }
}
BENCHMARK(BM_SequencePairPack)->Arg(10)->Arg(30)->Arg(60);

void BM_SequencePairPackNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sa::SequencePair sp(n);
  numeric::Rng rng(1);
  sp.shuffle(rng);
  std::vector<double> w(n), h(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = rng.uniform(1, 4);
    h[i] = rng.uniform(1, 4);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sp.pack_naive(w, h));
  }
}
BENCHMARK(BM_SequencePairPackNaive)->Arg(10)->Arg(30)->Arg(60);

void BM_GnnForwardBackward(benchmark::State& state) {
  circuits::TestCase tc = circuits::make_testcase("CM-OTA2");
  gnn::CircuitGraph graph(tc.circuit, 15.0);
  gnn::GnnModel model;
  numeric::Rng rng(2);
  model.initialize(rng);
  const numeric::Matrix x = graph.features(spread(tc.circuit));
  numeric::Matrix xg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.phi_and_input_grad(graph.adjacency(), x, xg));
  }
}
BENCHMARK(BM_GnnForwardBackward);

// Per-term objective breakdown of both analytical placers on one circuit:
// where the gradient time goes (spectral solve vs. wirelength vs. penalty
// terms) and what each term's weight/value ended at. The trace rows land in
// BENCH_micro_kernels.json under "term_traces".
void print_gp_term_breakdown(bench::JsonReport& json) {
  const std::string circuit = "CC-OTA";
  circuits::TestCase tc = circuits::make_testcase(circuit);
  std::printf("\n==== analytical placers: objective-term breakdown ====\n");

  const core::FlowResult ep =
      core::run_eplace_a(tc.circuit, bench::paper_eplace_options());
  bench::print_term_trace("ePlace-A (" + circuit + ")", ep.gp_trace);
  json.add_term_trace(circuit, "eplace-a", ep.gp_trace);

  const core::FlowResult pw =
      core::run_prior_work(tc.circuit, bench::paper_prior_options());
  bench::print_term_trace("prior-work (" + circuit + ")", pw.gp_trace);
  json.add_term_trace(circuit, "prior-work", pw.gp_trace);
}

// Quick-mode SA kernel table: the full-recompute annealer vs. the
// incremental engine on the largest paper circuit at an identical move
// budget, plus the naive-vs-LCS packing kernel on its own. The SA rows
// carry moves_per_sec, which the regression gate rate-checks, so a change
// that silently destroys annealing throughput fails CI.
void print_sa_kernel_table(bench::JsonReport& json) {
  using clock = std::chrono::steady_clock;

  std::string largest;
  std::size_t most = 0;
  for (const std::string& name : circuits::testcase_names()) {
    const std::size_t n = circuits::make_testcase(name).circuit.num_devices();
    if (n > most) {
      most = n;
      largest = name;
    }
  }
  circuits::TestCase tc = circuits::make_testcase(largest);
  const netlist::Evaluator eval(tc.circuit);
  std::printf(
      "\n==== SA cost engine: full recompute vs incremental (%s, %zu devices) "
      "====\n",
      largest.c_str(), most);
  std::printf("%-22s %12s %12s %12s %10s %7s\n", "engine", "anneal (s)",
              "moves/sec", "hpwl", "area", "legal");

  sa::SaOptions base = bench::paper_sa_options();
  base.seed = 1;
  // Fixed move budget: throughput comparisons are meaningless if the two
  // engines anneal different move counts, and the quick default (20k moves,
  // tens of ms) is timer-noise dominated.
  base.max_moves = bench::quick_mode() ? 150000 : 400000;
  const auto run_engine = [&](const char* flow, bool incremental) {
    sa::SaOptions o = base;
    o.incremental = incremental;
    // The "before" side reproduces the seed kernel: naive O(n^2) pack plus
    // full cost recompute per move.
    o.naive_pack = !incremental;
    // Best of three: the anneal is deterministic for a fixed seed, so reps
    // agree on every metric except wall time; max moves/sec is the run
    // least disturbed by machine load.
    sa::SaResult r = sa::SaPlacer(tc.circuit, o).place();
    for (int rep = 1; rep < 3; ++rep) {
      sa::SaResult again = sa::SaPlacer(tc.circuit, o).place();
      if (again.moves_per_second > r.moves_per_second) r = std::move(again);
    }
    const netlist::QualityReport q = eval.evaluate(r.placement);
    std::printf("%-22s %12.3f %12.0f %12.2f %10.2f %7s\n", flow,
                r.anneal_seconds, r.moves_per_second, q.hpwl, q.area,
                q.legal(1e-6) ? "yes" : "NO");
    json.add_sa_run(largest, flow, base.seed, r.anneal_seconds, q.hpwl,
                    q.area, q.legal(1e-6), r.moves_per_second);
    // Per-move evaluation latency as its own timed row.
    json.add_timing(largest,
                    incremental ? "sa-move-eval-incremental"
                                : "sa-move-eval-full",
                    r.moves_evaluated > 0
                        ? r.anneal_seconds /
                              static_cast<double>(r.moves_evaluated)
                        : 0.0);
    return r;
  };
  const sa::SaResult full = run_engine("sa-anneal-full", false);
  const sa::SaResult inc = run_engine("sa-anneal-incremental", true);
  if (full.moves_per_second > 0) {
    const double speedup = inc.moves_per_second / full.moves_per_second;
    std::printf("incremental speedup: %.1fx, net evals/move: %.0f%% of full\n",
                speedup, 100.0 * inc.eval_stats.net_eval_ratio());
    json.add_metric("sa_incremental_speedup", speedup);
    json.add_metric("sa_net_eval_ratio", inc.eval_stats.net_eval_ratio());
  }

  // Packing kernel alone, naive longest-path vs. Tang-Wong LCS.
  std::printf("\n%-10s %14s %14s %10s\n", "blocks", "naive (us)", "lcs (us)",
              "speedup");
  for (const std::size_t n : {30u, 120u, 480u}) {
    sa::SequencePair sp(n);
    numeric::Rng rng(3);
    sp.shuffle(rng);
    std::vector<double> w(n), h(n);
    for (std::size_t i = 0; i < n; ++i) {
      w[i] = rng.uniform(1, 4);
      h[i] = rng.uniform(1, 4);
    }
    sa::SequencePair::Packing pk;
    const int reps = n >= 480 ? 200 : 2000;
    auto t0 = clock::now();
    for (int i = 0; i < reps; ++i) pk = sp.pack_naive(w, h);
    const double naive_us =
        std::chrono::duration<double, std::micro>(clock::now() - t0).count() /
        reps;
    t0 = clock::now();
    for (int i = 0; i < reps; ++i) sp.pack_into(w, h, pk);
    const double lcs_us =
        std::chrono::duration<double, std::micro>(clock::now() - t0).count() /
        reps;
    std::printf("%-10zu %14.2f %14.2f %9.1fx\n", n, naive_us, lcs_us,
                naive_us / lcs_us);
    char label[32];
    std::snprintf(label, sizeof label, "n=%zu", n);
    json.add_timing(label, "seqpair-pack-naive", naive_us / 1e6);
    json.add_timing(label, "seqpair-pack-lcs", lcs_us / 1e6);
  }
}

// Exact HPWL through the AoS path: walk Net/Pin objects and ask the
// Placement for each pin position. This is what every engine did before the
// compiled flat core existed — kept here as the "before" side of the
// hpwl-flat comparison.
double hpwl_via_placement(const netlist::Circuit& c,
                          const netlist::Placement& p) {
  double total = 0;
  for (std::size_t n = 0; n < c.num_nets(); ++n) {
    const netlist::Net& net = c.net(NetId{n});
    if (net.degree() < 2) continue;
    double xmin = 0, xmax = 0, ymin = 0, ymax = 0;
    bool first = true;
    for (const PinId pid : net.pins) {
      const geom::Point pt = p.pin_position(pid);
      if (first) {
        xmin = xmax = pt.x;
        ymin = ymax = pt.y;
        first = false;
      } else {
        xmin = std::min(xmin, pt.x);
        xmax = std::max(xmax, pt.x);
        ymin = std::min(ymin, pt.y);
        ymax = std::max(ymax, pt.y);
      }
    }
    total += net.weight * ((xmax - xmin) + (ymax - ymin));
  }
  return total;
}

// The same HPWL over the compiled wirelength table and flat SoA coordinates:
// pin position = device center + precomputed center-relative offset, no
// object indirection. Matches hpwl_via_placement exactly for unflipped
// devices (the wl table bakes in the unflipped offsets).
double hpwl_via_flat(const netlist::CompiledCircuit& cc,
                     const netlist::PlacementState& s) {
  const std::span<const double> weight = cc.wl_weight();
  double total = 0;
  for (std::size_t i = 0; i < cc.num_wl_nets(); ++i) {
    const std::span<const std::uint32_t> dev = cc.wl_pin_device(i);
    const std::span<const double> dx = cc.wl_pin_dx(i);
    const std::span<const double> dy = cc.wl_pin_dy(i);
    double xmin = s.x[dev[0]] + dx[0], xmax = xmin;
    double ymin = s.y[dev[0]] + dy[0], ymax = ymin;
    for (std::size_t k = 1; k < dev.size(); ++k) {
      const double x = s.x[dev[k]] + dx[k];
      const double y = s.y[dev[k]] + dy[k];
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
    }
    total += weight[i] * ((xmax - xmin) + (ymax - ymin));
  }
  return total;
}

// Quick-mode compiled-core table: CompiledCircuit construction cost per
// circuit (compile-topology) and exact HPWL over the flat wirelength table
// vs. the AoS Placement walk (hpwl-flat vs. hpwl-placement). The regression
// gate tracks all three rows, so the flat path silently regressing below
// the AoS path fails CI.
void print_compiled_core_table(bench::JsonReport& json) {
  using clock = std::chrono::steady_clock;
  std::printf("\n==== compiled flat-netlist core ====\n");
  std::printf("%-10s %14s %16s %14s %10s\n", "circuit", "compile (us)",
              "hpwl-plc (us)", "hpwl-flat (us)", "speedup");
  for (const char* name : {"CC-OTA", "SCF"}) {
    circuits::TestCase tc = circuits::make_testcase(name);
    const netlist::Circuit& c = tc.circuit;

    const int compile_reps = 2000;
    auto t0 = clock::now();
    for (int i = 0; i < compile_reps; ++i) {
      netlist::CompiledCircuit cc(c);
      benchmark::DoNotOptimize(&cc);
    }
    const double compile_us =
        std::chrono::duration<double, std::micro>(clock::now() - t0).count() /
        compile_reps;

    const netlist::CompiledCircuit cc(c);
    netlist::Placement p(c);
    const std::vector<double> v = spread(c);
    const std::size_t n = c.num_devices();
    for (std::size_t i = 0; i < n; ++i) {
      p.set_position(DeviceId{i}, {v[i], v[n + i]});
    }
    const netlist::PlacementState state =
        netlist::PlacementState::from_placement(p);

    const int reps = 20000;
    double sink = 0;
    t0 = clock::now();
    for (int i = 0; i < reps; ++i) sink += hpwl_via_placement(c, p);
    const double plc_us =
        std::chrono::duration<double, std::micro>(clock::now() - t0).count() /
        reps;
    t0 = clock::now();
    for (int i = 0; i < reps; ++i) sink -= hpwl_via_flat(cc, state);
    const double flat_us =
        std::chrono::duration<double, std::micro>(clock::now() - t0).count() /
        reps;
    benchmark::DoNotOptimize(sink);
    if (std::abs(sink) > 1e-9 * reps) {
      std::printf("WARNING: flat and placement HPWL disagree on %s\n", name);
    }

    std::printf("%-10s %14.2f %16.3f %14.3f %9.1fx\n", name, compile_us,
                plc_us, flat_us, plc_us / flat_us);
    json.add_timing(name, "compile-topology", compile_us / 1e6);
    json.add_timing(name, "hpwl-placement", plc_us / 1e6);
    json.add_timing(name, "hpwl-flat", flat_us / 1e6);
  }
}

// Quick-mode SIMD kernel table: scalar reference vs. Vec4d path of the
// three analytical hot kernels, each timed best-of-3 on the largest paper
// circuit (docs/PERFORMANCE.md explains how to read the rows):
//   wa-grad-*  WA wirelength value+gradient over the compiled pin CSR
//   splat-*    electrostatic charge build (bilinear splat + normalize) on
//              a 256x256 bin grid
//   fft-*      dct2+dct3+dst3 trio at n=256 (the Poisson solve's inner 1D
//              transforms)
// The rows land in BENCH_micro_kernels.json and the *_simd_speedup metrics
// are gated by scripts/check_bench_regression.py, so losing the vector
// path (or a build change silently disabling it) fails CI.
void print_simd_kernel_table(bench::JsonReport& json) {
  using clock = std::chrono::steady_clock;

  std::string largest;
  std::size_t most = 0;
  for (const std::string& name : circuits::testcase_names()) {
    const std::size_t n = circuits::make_testcase(name).circuit.num_devices();
    if (n > most) {
      most = n;
      largest = name;
    }
  }
  circuits::TestCase tc = circuits::make_testcase(largest);
  std::printf("\n==== SIMD kernels: scalar vs %s (%s, %zu devices) ====\n",
              simd::dispatch_name(), largest.c_str(), most);
  std::printf("%-12s %14s %14s %10s\n", "kernel", "scalar (us)", "simd (us)",
              "speedup");

  // Best of three timed repetitions of `reps` calls: the run least
  // disturbed by machine load, same policy as the SA table.
  const auto best_of3 = [&](int reps, const auto& fn) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = clock::now();
      for (int i = 0; i < reps; ++i) fn();
      const double us =
          std::chrono::duration<double, std::micro>(clock::now() - t0)
              .count() /
          reps;
      best = std::min(best, us);
    }
    return best;
  };
  const auto row = [&](const char* kernel, const std::string& label,
                       double scalar_us, double simd_us) {
    std::printf("%-12s %14.2f %14.2f %9.2fx\n", kernel, scalar_us, simd_us,
                scalar_us / simd_us);
    json.add_timing(label, std::string(kernel) + "-scalar", scalar_us / 1e6);
    json.add_timing(label, std::string(kernel) + "-simd", simd_us / 1e6);
    json.add_metric(std::string(kernel) + "_simd_speedup",
                    scalar_us / simd_us);
  };

  const std::vector<double> v = spread(tc.circuit);
  double sink = 0;

  // WA wirelength value + gradient over the full circuit.
  {
    wirelength::WaWirelength wl(tc.circuit);
    wl.set_gamma(1.0);
    std::vector<double> g(v.size(), 0.0);
    const auto once = [&] {
      std::fill(g.begin(), g.end(), 0.0);
      sink += wl.value_and_grad(v, g);
    };
    const int reps = bench::quick_mode() ? 300 : 1000;
    wl.set_use_simd(false);
    const double scalar_us = best_of3(reps, once);
    wl.set_use_simd(true);
    const double simd_us = best_of3(reps, once);
    row("wa-grad", largest, scalar_us, simd_us);
  }

  // Charge-density build (bilinear splat + normalize + overflow) at the
  // paper's largest grid. The tight region makes every device span many
  // bin columns, which is exactly the regime the 256x256 grids of the
  // production flows put the splat in.
  {
    density::ElectroDensity ed(tc.circuit, {0, 0, 16, 16}, 256, 256, 0.85);
    const auto once = [&] { ed.build_density(v); };
    const int reps = bench::quick_mode() ? 30 : 100;
    ed.set_use_simd(false);
    const double scalar_us = best_of3(reps, once);
    ed.set_use_simd(true);
    const double simd_us = best_of3(reps, once);
    row("splat", largest, scalar_us, simd_us);
  }

  // The Poisson solve's inner 1D transforms: forward DCT + both syntheses.
  {
    const std::size_t n = 256;
    numeric::fft::FftPlan plan(n);
    std::vector<double> in(n), spec(n), out(n);
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = std::sin(0.7 * static_cast<double>(i));
    }
    const auto once = [&] {
      plan.dct2(in.data(), 1, spec.data(), 1);
      plan.dct3(spec.data(), 1, out.data(), 1);
      plan.dst3(spec.data(), 1, out.data(), 1);
      sink += out[1];
    };
    const int reps = bench::quick_mode() ? 2000 : 10000;
    plan.set_use_simd(false);
    const double scalar_us = best_of3(reps, once);
    plan.set_use_simd(true);
    const double simd_us = best_of3(reps, once);
    row("fft", "n=256", scalar_us, simd_us);
  }
  benchmark::DoNotOptimize(sink);
}

// Quick-mode before/after table: times the full 2D spectral solve on the
// dense-basis (before) and FFT (after) paths without the google-benchmark
// harness, so `APLACE_QUICK=1 ./bench_micro_kernels` prints the comparison
// in a second or two.
void print_spectral_table() {
  using clock = std::chrono::steady_clock;
  bench::JsonReport json("micro_kernels");
  std::printf("==== spectral Poisson solve: dense basis vs. FFT ====\n");
  std::printf("%8s %14s %14s %10s\n", "bins", "naive (ms)", "fft (ms)",
              "speedup");
  for (const std::size_t bins : {64u, 128u, 256u}) {
    const numeric::spectral::Basis bx(bins), by(bins);
    numeric::Matrix m = random_density(bins);
    numeric::Matrix psi(bins, bins), ex(bins, bins), ey(bins, bins);

    // One warm-up each (builds the lazy dense tables / touches caches).
    spectral_solve_naive(m, bx, by, psi, ex, ey);
    spectral_solve_fft(m, bx, by, psi, ex, ey);

    const int naive_reps = bins >= 256 ? 3 : 10;
    auto t0 = clock::now();
    for (int i = 0; i < naive_reps; ++i) {
      spectral_solve_naive(m, bx, by, psi, ex, ey);
    }
    const double naive_ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count() /
        naive_reps;

    const int fft_reps = 50;
    t0 = clock::now();
    for (int i = 0; i < fft_reps; ++i) {
      spectral_solve_fft(m, bx, by, psi, ex, ey);
    }
    const double fft_ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count() /
        fft_reps;

    std::printf("%5zux%zu %14.3f %14.3f %9.1fx\n", bins, bins, naive_ms,
                fft_ms, naive_ms / fft_ms);
    char label[32];
    std::snprintf(label, sizeof label, "%zux%zu", bins, bins);
    json.add_timing(label, "spectral-naive", naive_ms / 1e3);
    json.add_timing(label, "spectral-fft", fft_ms / 1e3);
  }
  print_simd_kernel_table(json);
  print_compiled_core_table(json);
  print_sa_kernel_table(json);
  print_gp_term_breakdown(json);
  json.write();
}

}  // namespace

int main(int argc, char** argv) {
  const char* quick = std::getenv("APLACE_QUICK");
  if (quick != nullptr && quick[0] != '\0' && quick[0] != '0') {
    print_spectral_table();
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
