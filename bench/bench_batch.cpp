// Batch placement throughput: all ten paper circuits x three flows, run
// once sequentially (1 thread, parallel=false) and once on an 8-thread
// pool via core::run_batch. Quality must match exactly between the two
// runs (determinism contract); the JSON carries both wall times and the
// speedup so CI can track batch scaling on multi-core runners.

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/batch.hpp"

int main() {
  using namespace aplace;
  bench::header("Batch driver: 10 circuits x 3 flows, sequential vs 8 threads");

  // Keep every circuit alive for the whole run; BatchJob holds pointers.
  std::vector<std::unique_ptr<circuits::TestCase>> cases;
  std::vector<core::BatchJob> jobs;
  for (const std::string& name : circuits::testcase_names()) {
    cases.push_back(
        std::make_unique<circuits::TestCase>(circuits::make_testcase(name)));
    const netlist::Circuit* c = &cases.back()->circuit;
    for (core::FlowKind flow : {core::FlowKind::EPlaceA,
                                core::FlowKind::PriorWork,
                                core::FlowKind::Sa}) {
      core::BatchJob j;
      j.circuit = c;
      j.flow = flow;
      j.eplace = bench::paper_eplace_options();
      j.sa.sa = bench::paper_sa_options();
      j.label = name + "/" + core::to_string(flow);
      jobs.push_back(std::move(j));
    }
  }

  base::ThreadPool::set_global_threads(1);
  core::BatchOptions seq;
  seq.parallel = false;
  const core::BatchReport r1 = core::run_batch(jobs, seq);

  base::ThreadPool::set_global_threads(8);
  const core::BatchReport r8 = core::run_batch(jobs, {});

  bench::JsonReport json("batch");
  bool quality_match = true;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const core::BatchItem& a = r1.items[i];
    const core::BatchItem& b = r8.items[i];
    if (a.result.quality.hpwl != b.result.quality.hpwl ||
        a.result.quality.area != b.result.quality.area) {
      quality_match = false;
      std::printf("MISMATCH %-18s hpwl %.6f vs %.6f, area %.6f vs %.6f\n",
                  a.label.c_str(), a.result.hpwl(), b.result.hpwl(),
                  a.result.area(), b.result.area());
    }
    json.add_run(a.label, core::to_string(a.flow), 0, b.wall_seconds,
                 b.result.hpwl(), b.result.area(), b.result.legal());
  }

  std::printf("jobs %zu (ok seq %zu / 8t %zu)\n", jobs.size(), r1.num_ok,
              r8.num_ok);
  std::printf("sequential %.2fs, 8 threads %.2fs, speedup %.2fx\n",
              r1.wall_seconds, r8.wall_seconds,
              r1.wall_seconds / r8.wall_seconds);
  std::printf("quality (hpwl+area) identical across thread counts: %s\n",
              quality_match ? "yes" : "NO");

  json.add_metric("wall_sequential", r1.wall_seconds);
  json.add_metric("wall_parallel_8t", r8.wall_seconds);
  json.add_metric("speedup", r1.wall_seconds / r8.wall_seconds);
  json.add_metric("jobs_ok", static_cast<double>(r8.num_ok));
  json.add_metric("quality_match", quality_match ? 1.0 : 0.0);
  json.write();
  return quality_match ? 0 : 1;
}
