// Paper Fig. 2: effect of the explicit area term in the GP objective.
// Without it ("eta = 0"), post-detailed-placement area and HPWL inflate
// (paper reports >20% average increases).

#include "bench_common.hpp"

int main() {
  using namespace aplace;
  bench::header("Fig. 2: area term ablation (with vs without Area(v))");
  std::printf("%-8s | %16s | %16s | %7s %7s\n", "", "with (a/h)",
              "without (a/h)", "dA", "dHPWL");

  bench::JsonReport json("fig2_area_term");
  std::vector<double> with_a, with_h, wo_a, wo_h;
  for (const char* name : {"CC-OTA", "Comp1", "Comp2", "CM-OTA1", "VGA",
                           "VCO2"}) {
    circuits::TestCase tc = circuits::make_testcase(name);

    core::EPlaceAOptions with = bench::paper_eplace_options();
    core::EPlaceAOptions without = with;
    without.gp.eta_rel = 0.0;

    const core::FlowResult rw = core::run_eplace_a(tc.circuit, with);
    const core::FlowResult ro = core::run_eplace_a(tc.circuit, without);
    json.add_flow(name, "eplace-a", with.gp.seed, rw);
    json.add_flow(name, "eplace-a-noarea", without.gp.seed, ro);
    std::printf("%-8s | %7.1f %7.1f | %7.1f %7.1f | %+6.1f%% %+6.1f%%\n",
                name, rw.area(), rw.hpwl(), ro.area(), ro.hpwl(),
                100 * (ro.area() / rw.area() - 1),
                100 * (ro.hpwl() / rw.hpwl() - 1));
    std::fflush(stdout);
    with_a.push_back(rw.area());
    with_h.push_back(rw.hpwl());
    wo_a.push_back(ro.area());
    wo_h.push_back(ro.hpwl());
  }
  std::printf("\nAvg increase without the area term: area %+.1f%%, "
              "HPWL %+.1f%%  (paper: >20%% on both)\n",
              100 * (aplace::bench::geomean_ratio(wo_a, with_a) - 1),
              100 * (aplace::bench::geomean_ratio(wo_h, with_h) - 1));
  json.add_metric("area_increase_without_term",
                  aplace::bench::geomean_ratio(wo_a, with_a) - 1);
  json.add_metric("hpwl_increase_without_term",
                  aplace::bench::geomean_ratio(wo_h, with_h) - 1);
  json.write();
  return 0;
}
