// Ablation: WA vs LSE wirelength smoothing inside the ePlace-A global
// placer, plus flipping on/off in the ILP detailed placer. These are two of
// the three reasons the paper gives for ePlace-A's advantage over [11]
// (the third, the explicit area term, is covered by bench_fig2_area_term).

#include "bench_common.hpp"

int main() {
  using namespace aplace;
  bench::header("Ablation: WA vs LSE smoothing / flipping on-off");
  std::printf("%-8s | %15s | %15s | %15s\n", "", "WA+flip (a/h)",
              "LSE+flip (a/h)", "WA, no flip (a/h)");

  bench::JsonReport json("ablation_smoothing");
  std::vector<double> wa_a, wa_h, lse_a, lse_h, nf_a, nf_h;
  for (const char* name : {"CC-OTA", "Comp1", "CM-OTA1", "VGA"}) {
    circuits::TestCase tc = circuits::make_testcase(name);
    const netlist::Circuit& c = tc.circuit;

    core::EPlaceAOptions wa = bench::paper_eplace_options();
    core::EPlaceAOptions lse = wa;
    lse.gp.smoothing = gp::WlSmoothing::LogSumExp;
    core::EPlaceAOptions noflip = wa;
    noflip.dp.enable_flipping = false;

    const core::FlowResult rw = core::run_eplace_a(c, wa);
    const core::FlowResult rl = core::run_eplace_a(c, lse);
    const core::FlowResult rn = core::run_eplace_a(c, noflip);
    json.add_flow(name, "eplace-a-wa", wa.gp.seed, rw);
    json.add_flow(name, "eplace-a-lse", lse.gp.seed, rl);
    json.add_flow(name, "eplace-a-noflip", noflip.gp.seed, rn);
    std::printf("%-8s | %7.1f %7.1f | %7.1f %7.1f | %7.1f %7.1f\n", name,
                rw.area(), rw.hpwl(), rl.area(), rl.hpwl(), rn.area(),
                rn.hpwl());
    std::fflush(stdout);
    wa_a.push_back(rw.area());   wa_h.push_back(rw.hpwl());
    lse_a.push_back(rl.area());  lse_h.push_back(rl.hpwl());
    nf_a.push_back(rn.area());   nf_h.push_back(rn.hpwl());
  }
  std::printf("\nvs WA+flip:  LSE area %.2fx hpwl %.2fx;  no-flip area %.2fx "
              "hpwl %.2fx\n",
              bench::geomean_ratio(lse_a, wa_a),
              bench::geomean_ratio(lse_h, wa_h),
              bench::geomean_ratio(nf_a, wa_a),
              bench::geomean_ratio(nf_h, wa_h));
  std::printf(
      "Note: for analog-sized (2-3 pin) nets WA and LSE errors are of the\n"
      "same order, so unlike the paper's claim the smoothing choice is a\n"
      "wash here; flipping is the reliable HPWL win (see EXPERIMENTS.md).\n");
  json.add_metric("lse_vs_wa_area", bench::geomean_ratio(lse_a, wa_a));
  json.add_metric("lse_vs_wa_hpwl", bench::geomean_ratio(lse_h, wa_h));
  json.add_metric("noflip_vs_wa_area", bench::geomean_ratio(nf_a, wa_a));
  json.add_metric("noflip_vs_wa_hpwl", bench::geomean_ratio(nf_h, wa_h));
  json.write();
  return 0;
}
