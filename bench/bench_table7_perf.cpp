// Paper Table VII: area / wirelength / runtime of the three
// performance-driven methods. Analytical methods should stay ahead on
// area+HPWL with a ~3x (not ~50x) runtime edge — GNN gradients are the
// expensive part of analytical perf-driven placement.

#include "bench_common.hpp"

int main() {
  using namespace aplace;
  bench::header("Table VII: performance-driven area/HPWL/runtime comparison");
  std::printf("%-8s | %22s | %22s | %22s\n", "", "perf-driven SA [19]",
              "Perf* of [11]", "ePlace-AP");
  std::printf("%-8s | %7s %7s %6s | %7s %7s %6s | %7s %7s %6s\n", "Design",
              "Area", "HPWL", "t(s)", "Area", "HPWL", "t(s)", "Area", "HPWL",
              "t(s)");

  bench::JsonReport json("table7_perf");
  std::vector<double> sa_a, sa_h, sa_t, pw_a, pw_h, pw_t, ep_a, ep_h, ep_t;
  for (const std::string& name : circuits::testcase_names()) {
    circuits::TestCase tc = circuits::make_testcase(name);
    const netlist::Circuit& c = tc.circuit;

    auto ctx = core::build_perf_context(c, tc.spec,
                                        bench::paper_dataset_options(),
                                        bench::paper_train_options());

    core::SaFlowOptions sp;
    sp.sa = bench::paper_sa_perf_options();
    const core::PerfFlowResult sa = core::run_sa_perf(c, *ctx, sp, 1.0);
    const core::PerfFlowResult pw =
        core::run_prior_work_perf(c, *ctx, bench::paper_prior_options());
    const core::PerfFlowResult ep =
        core::run_eplace_ap(c, *ctx, bench::paper_eplace_options());
    json.add_run(name, "sa-perf", sp.sa.seed, sa.flow.total_seconds,
                 sa.flow.hpwl(), sa.flow.area(), sa.flow.legal());
    json.add_run(name, "prior-work-perf", 0, pw.flow.total_seconds,
                 pw.flow.hpwl(), pw.flow.area(), pw.flow.legal());
    json.add_run(name, "eplace-ap", 0, ep.flow.total_seconds,
                 ep.flow.hpwl(), ep.flow.area(), ep.flow.legal());

    std::printf(
        "%-8s | %7.1f %7.1f %6.1f | %7.1f %7.1f %6.1f | %7.1f %7.1f %6.1f\n",
        name.c_str(), sa.flow.area(), sa.flow.hpwl(), sa.flow.total_seconds,
        pw.flow.area(), pw.flow.hpwl(), pw.flow.total_seconds, ep.flow.area(),
        ep.flow.hpwl(), ep.flow.total_seconds);
    std::fflush(stdout);
    sa_a.push_back(sa.flow.area());  sa_h.push_back(sa.flow.hpwl());
    sa_t.push_back(sa.flow.total_seconds);
    pw_a.push_back(pw.flow.area());  pw_h.push_back(pw.flow.hpwl());
    pw_t.push_back(pw.flow.total_seconds);
    ep_a.push_back(ep.flow.area());  ep_h.push_back(ep.flow.hpwl());
    ep_t.push_back(ep.flow.total_seconds);
  }

  std::printf("\nAvg ratios vs ePlace-AP (paper: SA 1.09/1.02/3.09x, "
              "Perf* 1.14/1.13/1.01x):\n");
  std::printf("  perf-SA : area %.2fx  hpwl %.2fx  runtime %.2fx\n",
              bench::geomean_ratio(sa_a, ep_a),
              bench::geomean_ratio(sa_h, ep_h),
              bench::geomean_ratio(sa_t, ep_t));
  std::printf("  Perf*   : area %.2fx  hpwl %.2fx  runtime %.2fx\n",
              bench::geomean_ratio(pw_a, ep_a),
              bench::geomean_ratio(pw_h, ep_h),
              bench::geomean_ratio(pw_t, ep_t));
  json.add_metric("sa_vs_eplace_ap_area", bench::geomean_ratio(sa_a, ep_a));
  json.add_metric("sa_vs_eplace_ap_hpwl", bench::geomean_ratio(sa_h, ep_h));
  json.add_metric("sa_vs_eplace_ap_runtime",
                  bench::geomean_ratio(sa_t, ep_t));
  json.add_metric("prior_vs_eplace_ap_area",
                  bench::geomean_ratio(pw_a, ep_a));
  json.add_metric("prior_vs_eplace_ap_hpwl",
                  bench::geomean_ratio(pw_h, ep_h));
  json.write();
  return 0;
}
