// Paper Table I: soft vs hard symmetry constraints in global placement.
// Hard symmetry in GP restricts exploration and should cost area and HPWL
// after detailed placement.

#include "bench_common.hpp"

int main() {
  using namespace aplace;
  bench::header("Table I: soft vs hard symmetry constraints in GP");
  std::printf("%-8s | %18s | %18s\n", "", "Soft (a/h/t)", "Hard (a/h/t)");
  bench::JsonReport json("table1_symmetry");

  // Paper uses CC-OTA, Comp2, VCO2.
  for (const char* name : {"CC-OTA", "Comp2", "VCO2"}) {
    circuits::TestCase tc = circuits::make_testcase(name);

    core::EPlaceAOptions soft = bench::paper_eplace_options();
    core::EPlaceAOptions hard = soft;
    hard.gp.hard_symmetry = true;

    const core::FlowResult rs = core::run_eplace_a(tc.circuit, soft);
    const core::FlowResult rh = core::run_eplace_a(tc.circuit, hard);
    json.add_flow(name, "eplace-a-soft", soft.gp.seed, rs);
    json.add_flow(name, "eplace-a-hard", hard.gp.seed, rh);
    std::printf("%-8s | %6.1f %6.1f %5.2f | %6.1f %6.1f %5.2f%s\n", name,
                rs.area(), rs.hpwl(), rs.total_seconds, rh.area(), rh.hpwl(),
                rh.total_seconds,
                (rs.legal() && rh.legal()) ? "" : "  [ILLEGAL]");
    std::fflush(stdout);
  }
  json.write();
  std::printf(
      "\nPaper reference (soft | hard, area/HPWL/runtime):\n"
      "CC-OTA   | 100.3   31.4 0.22 | 117.5   34.3 0.28\n"
      "Comp2    | 130.9   80.8 2.73 | 141.8  114.6 3.02\n"
      "VCO2     | 516.4  304.1 0.94 | 535.7  320.2 1.15\n"
      "Expected shape: hard symmetry increases both area and HPWL.\n");
  return 0;
}
