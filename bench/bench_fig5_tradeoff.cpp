// Paper Fig. 5: HPWL-area tradeoff on CM-OTA1 under parameter sweeps.
// Each method contributes a set of (area, HPWL) points; ePlace-A's frontier
// should sit closest to the lower-left corner.

#include "bench_common.hpp"

int main() {
  using namespace aplace;
  bench::header("Fig. 5: HPWL-area tradeoff for CM-OTA1 (parameter sweeps)");
  circuits::TestCase tc = circuits::make_testcase("CM-OTA1");
  const netlist::Circuit& c = tc.circuit;

  std::printf("series, param, area(um^2), hpwl(um)\n");
  bench::JsonReport json("fig5_tradeoff");
  char label[64];

  // SA: sweep the area-vs-wirelength cost weight.
  for (double aw : {0.2, 0.35, 0.5, 0.65, 0.8}) {
    core::SaFlowOptions so;
    so.sa = bench::paper_sa_options();
    if (!bench::quick_mode()) so.sa.cooling = 0.997;  // keep the sweep sane
    so.sa.area_weight = aw;
    const core::FlowResult r = core::run_sa(c, so);
    std::snprintf(label, sizeof label, "sa[aw=%.2f]", aw);
    json.add_flow("CM-OTA1", label, so.sa.seed, r);
    std::printf("SA, aw=%.2f, %.1f, %.1f\n", aw, r.area(), r.hpwl());
    std::fflush(stdout);
  }

  // Prior work [11]: sweep the GP utilization (region tightness).
  for (double util : {0.4, 0.5, 0.6, 0.7, 0.8}) {
    core::PriorWorkOptions po;
    po.gp.utilization = util;
    const core::FlowResult r = core::run_prior_work(c, po);
    std::snprintf(label, sizeof label, "prior-work[util=%.2f]", util);
    json.add_flow("CM-OTA1", label, 0, r);
    std::printf("prior[11], util=%.2f, %.1f, %.1f\n", util, r.area(),
                r.hpwl());
    std::fflush(stdout);
  }

  // ePlace-A: sweep the area-term weight eta (and matching DP mu).
  for (double eta : {0.15, 0.3, 0.55, 0.9, 1.4}) {
    core::EPlaceAOptions eo = bench::paper_eplace_options();
    eo.gp.eta_rel = eta;
    eo.dp.mu = 0.5 + eta;
    const core::FlowResult r = core::run_eplace_a(c, eo);
    std::snprintf(label, sizeof label, "eplace-a[eta=%.2f]", eta);
    json.add_flow("CM-OTA1", label, eo.gp.seed, r);
    std::printf("ePlace-A, eta=%.2f, %.1f, %.1f\n", eta, r.area(), r.hpwl());
    std::fflush(stdout);
  }
  json.write();

  std::printf(
      "\nExpected shape (paper Fig. 5): ePlace-A points dominate — closest\n"
      "to the lower-left (small area AND small HPWL) across the sweep.\n");
  return 0;
}
