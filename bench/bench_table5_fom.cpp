// Paper Table V: FOM comparison — conventional vs performance-driven
// variants of SA, prior work [11] (Perf* extension) and ePlace-A/ePlace-AP.
// FOM evaluated by the routed surrogate "SPICE" (perf::PerformanceModel).

#include "bench_common.hpp"

int main() {
  using namespace aplace;
  bench::header("Table V: FOM, conventional vs performance-driven variants");
  std::printf("%-8s | %11s | %13s | %13s\n", "", "SA", "prior [11]",
              "ePlace-A/AP");
  std::printf("%-8s | %5s %5s | %6s %6s | %6s %6s\n", "Design", "Conv",
              "Perf", "Conv", "Perf*", "Conv", "Perf");

  bench::JsonReport json("table5_fom");
  double sum[6] = {0, 0, 0, 0, 0, 0};
  std::size_t count = 0;
  for (const std::string& name : circuits::testcase_names()) {
    circuits::TestCase tc = circuits::make_testcase(name);
    const netlist::Circuit& c = tc.circuit;

    auto ctx = core::build_perf_context(c, tc.spec,
                                        bench::paper_dataset_options(),
                                        bench::paper_train_options());

    // Conventional flows, evaluated by the same routed surrogate.
    core::SaFlowOptions so;
    so.sa = bench::paper_sa_options();
    const core::FlowResult sa_flow = core::run_sa(c, so);
    const double sa_conv = evaluate_routed(*ctx, sa_flow.placement).fom;
    const core::FlowResult pw_flow =
        core::run_prior_work(c, bench::paper_prior_options());
    const double pw_conv = evaluate_routed(*ctx, pw_flow.placement).fom;
    const core::FlowResult ep_flow =
        core::run_eplace_a(c, bench::paper_eplace_options());
    const double ep_conv = evaluate_routed(*ctx, ep_flow.placement).fom;
    json.add_flow(name, "sa", so.sa.seed, sa_flow);
    json.add_flow(name, "prior-work", 0, pw_flow);
    json.add_flow(name, "eplace-a", 0, ep_flow);

    // Performance-driven variants.
    core::SaFlowOptions sp;
    sp.sa = bench::paper_sa_perf_options();
    const core::PerfFlowResult sa_pr = core::run_sa_perf(c, *ctx, sp, 1.0);
    const double sa_perf = sa_pr.perf.fom;
    const core::PerfFlowResult pw_pr =
        core::run_prior_work_perf(c, *ctx, bench::paper_prior_options());
    const double pw_perf = pw_pr.perf.fom;
    const core::PerfFlowResult ep_pr =
        core::run_eplace_ap(c, *ctx, bench::paper_eplace_options());
    const double ep_perf = ep_pr.perf.fom;
    json.add_run(name, "sa-perf", sp.sa.seed, sa_pr.flow.total_seconds,
                 sa_pr.flow.hpwl(), sa_pr.flow.area(), sa_pr.flow.legal());
    json.add_run(name, "prior-work-perf", 0, pw_pr.flow.total_seconds,
                 pw_pr.flow.hpwl(), pw_pr.flow.area(), pw_pr.flow.legal());
    json.add_run(name, "eplace-ap", 0, ep_pr.flow.total_seconds,
                 ep_pr.flow.hpwl(), ep_pr.flow.area(), ep_pr.flow.legal());

    std::printf("%-8s | %5.2f %5.2f | %6.2f %6.2f | %6.2f %6.2f\n",
                name.c_str(), sa_conv, sa_perf, pw_conv, pw_perf, ep_conv,
                ep_perf);
    std::fflush(stdout);
    const double vals[6] = {sa_conv, sa_perf, pw_conv,
                            pw_perf, ep_conv, ep_perf};
    for (int k = 0; k < 6; ++k) sum[k] += vals[k];
    ++count;
  }
  std::printf("%-8s | %5.2f %5.2f | %6.2f %6.2f | %6.2f %6.2f\n", "Avg.",
              sum[0] / count, sum[1] / count, sum[2] / count, sum[3] / count,
              sum[4] / count, sum[5] / count);
  const double n = static_cast<double>(count);
  json.add_metric("avg_fom_sa_conv", sum[0] / n);
  json.add_metric("avg_fom_sa_perf", sum[1] / n);
  json.add_metric("avg_fom_prior_conv", sum[2] / n);
  json.add_metric("avg_fom_prior_perf", sum[3] / n);
  json.add_metric("avg_fom_eplace_conv", sum[4] / n);
  json.add_metric("avg_fom_eplace_perf", sum[5] / n);
  json.write();
  std::printf(
      "\nPaper reference averages: SA 0.81/0.87, prior 0.81/0.88, "
      "ePlace 0.81/0.90.\nExpected shape: performance-driven > conventional "
      "for every method; ePlace-AP best overall.\n");
  return 0;
}
