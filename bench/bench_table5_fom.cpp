// Paper Table V: FOM comparison — conventional vs performance-driven
// variants of SA, prior work [11] (Perf* extension) and ePlace-A/ePlace-AP.
// FOM evaluated by the routed surrogate "SPICE" (perf::PerformanceModel).

#include "bench_common.hpp"

int main() {
  using namespace aplace;
  bench::header("Table V: FOM, conventional vs performance-driven variants");
  std::printf("%-8s | %11s | %13s | %13s\n", "", "SA", "prior [11]",
              "ePlace-A/AP");
  std::printf("%-8s | %5s %5s | %6s %6s | %6s %6s\n", "Design", "Conv",
              "Perf", "Conv", "Perf*", "Conv", "Perf");

  double sum[6] = {0, 0, 0, 0, 0, 0};
  std::size_t count = 0;
  for (const std::string& name : circuits::testcase_names()) {
    circuits::TestCase tc = circuits::make_testcase(name);
    const netlist::Circuit& c = tc.circuit;

    auto ctx = core::build_perf_context(c, tc.spec,
                                        bench::paper_dataset_options(),
                                        bench::paper_train_options());

    // Conventional flows, evaluated by the same routed surrogate.
    core::SaFlowOptions so;
    so.sa = bench::paper_sa_options();
    const double sa_conv =
        evaluate_routed(*ctx, core::run_sa(c, so).placement).fom;
    const double pw_conv =
        evaluate_routed(*ctx,
                        core::run_prior_work(c, bench::paper_prior_options())
                            .placement)
            .fom;
    const double ep_conv =
        evaluate_routed(
            *ctx,
            core::run_eplace_a(c, bench::paper_eplace_options()).placement)
            .fom;

    // Performance-driven variants.
    core::SaFlowOptions sp;
    sp.sa = bench::paper_sa_perf_options();
    const double sa_perf = core::run_sa_perf(c, *ctx, sp, 1.0).perf.fom;
    const double pw_perf =
        core::run_prior_work_perf(c, *ctx, bench::paper_prior_options())
            .perf.fom;
    const double ep_perf =
        core::run_eplace_ap(c, *ctx, bench::paper_eplace_options()).perf.fom;

    std::printf("%-8s | %5.2f %5.2f | %6.2f %6.2f | %6.2f %6.2f\n",
                name.c_str(), sa_conv, sa_perf, pw_conv, pw_perf, ep_conv,
                ep_perf);
    std::fflush(stdout);
    const double vals[6] = {sa_conv, sa_perf, pw_conv,
                            pw_perf, ep_conv, ep_perf};
    for (int k = 0; k < 6; ++k) sum[k] += vals[k];
    ++count;
  }
  std::printf("%-8s | %5.2f %5.2f | %6.2f %6.2f | %6.2f %6.2f\n", "Avg.",
              sum[0] / count, sum[1] / count, sum[2] / count, sum[3] / count,
              sum[4] / count, sum[5] / count);
  std::printf(
      "\nPaper reference averages: SA 0.81/0.87, prior 0.81/0.88, "
      "ePlace 0.81/0.90.\nExpected shape: performance-driven > conventional "
      "for every method; ePlace-AP best overall.\n");
  return 0;
}
