// Paper Fig. 6: FOM-area tradeoff on CM-OTA1 under parameter sweeps of the
// three performance-driven methods. ePlace-AP's points should sit nearest
// the upper-left corner (high FOM, small area).

#include "bench_common.hpp"

int main() {
  using namespace aplace;
  bench::header("Fig. 6: FOM-area tradeoff for CM-OTA1 (perf-driven sweeps)");

  circuits::TestCase tc = circuits::make_testcase("CM-OTA1");
  const netlist::Circuit& c = tc.circuit;
  auto ctx = core::build_perf_context(c, tc.spec,
                                      bench::paper_dataset_options(),
                                      bench::paper_train_options());

  std::printf("series, param, area(um^2), fom\n");
  bench::JsonReport json("fig6_fom_tradeoff");
  char label[64];

  // Perf-driven SA: sweep the GNN weight alpha.
  for (double alpha : {0.3, 0.8, 1.5, 2.5}) {
    core::SaFlowOptions sp;
    sp.sa = bench::paper_sa_perf_options();
    const core::PerfFlowResult r = core::run_sa_perf(c, *ctx, sp, alpha);
    std::snprintf(label, sizeof label, "sa-perf[alpha=%.1f]", alpha);
    json.add_run("CM-OTA1", label, sp.sa.seed, r.flow.total_seconds,
                 r.flow.hpwl(), r.flow.area(), r.flow.legal());
    std::snprintf(label, sizeof label, "fom_sa_perf_alpha%.1f", alpha);
    json.add_metric(label, r.perf.fom);
    std::printf("perf-SA, alpha=%.1f, %.1f, %.3f\n", alpha, r.flow.area(),
                r.perf.fom);
    std::fflush(stdout);
  }

  // Perf* of [11]: sweep the extra-term weight.
  for (double rel : {0.15, 0.4, 0.8, 1.4}) {
    core::PriorWorkOptions po;
    po.gp.extra_rel = rel;
    const core::PerfFlowResult r = core::run_prior_work_perf(c, *ctx, po);
    std::snprintf(label, sizeof label, "prior-work-perf[rel=%.2f]", rel);
    json.add_run("CM-OTA1", label, 0, r.flow.total_seconds, r.flow.hpwl(),
                 r.flow.area(), r.flow.legal());
    std::snprintf(label, sizeof label, "fom_prior_perf_rel%.2f", rel);
    json.add_metric(label, r.perf.fom);
    std::printf("Perf*[11], rel=%.2f, %.1f, %.3f\n", rel, r.flow.area(),
                r.perf.fom);
    std::fflush(stdout);
  }

  // ePlace-AP: sweep the GNN gradient weight.
  for (double rel : {0.15, 0.4, 0.8, 1.4}) {
    core::EPlaceAOptions eo = bench::paper_eplace_options();
    eo.gp.extra_rel = rel;
    const core::PerfFlowResult r = core::run_eplace_ap(c, *ctx, eo);
    std::snprintf(label, sizeof label, "eplace-ap[rel=%.2f]", rel);
    json.add_run("CM-OTA1", label, 0, r.flow.total_seconds, r.flow.hpwl(),
                 r.flow.area(), r.flow.legal());
    std::snprintf(label, sizeof label, "fom_eplace_ap_rel%.2f", rel);
    json.add_metric(label, r.perf.fom);
    std::printf("ePlace-AP, rel=%.2f, %.1f, %.3f\n", rel, r.flow.area(),
                r.perf.fom);
    std::fflush(stdout);
  }
  json.write();

  std::printf(
      "\nExpected shape (paper Fig. 6): ePlace-AP near the upper-left —\n"
      "best FOM at the smallest area across parameter settings.\n");
  return 0;
}
