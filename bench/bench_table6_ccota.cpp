// Paper Table VI: detailed CC-OTA metrics (gain, UGF, BW, PM) for the
// conventional ePlace-A placement vs the performance-driven ePlace-AP one,
// from the routed surrogate simulation.

#include "bench_common.hpp"

int main() {
  using namespace aplace;
  bench::header("Table VI: detailed CC-OTA performance, ePlace-A vs ePlace-AP");

  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  const netlist::Circuit& c = tc.circuit;
  auto ctx = core::build_perf_context(c, tc.spec,
                                      bench::paper_dataset_options(),
                                      bench::paper_train_options());

  const core::FlowResult conv =
      core::run_eplace_a(c, bench::paper_eplace_options());
  const perf::PerformanceResult pc = evaluate_routed(*ctx, conv.placement);
  const core::PerfFlowResult ap =
      core::run_eplace_ap(c, *ctx, bench::paper_eplace_options());

  bench::JsonReport json("table6_ccota");
  json.add_flow("CC-OTA", "eplace-a", 0, conv);
  json.add_run("CC-OTA", "eplace-ap", 0, ap.flow.total_seconds,
               ap.flow.hpwl(), ap.flow.area(), ap.flow.legal());
  json.add_metric("fom_eplace_a", pc.fom);
  json.add_metric("fom_eplace_ap", ap.perf.fom);
  json.write();

  std::printf("%-12s | %10s | %12s | %12s\n", "Metric", "Spec",
              "ePlace-A", "ePlace-AP");
  for (std::size_t m = 0; m < pc.metrics.size(); ++m) {
    const perf::MetricResult& a = pc.metrics[m];
    const perf::MetricResult& b = ap.perf.metrics[m];
    std::printf("%-12s | %10.1f | %7.1f (%3.0f%%) | %7.1f (%3.0f%%)\n",
                a.name.c_str(), a.spec, a.value, 100 * a.normalized, b.value,
                100 * b.normalized);
  }
  std::printf("%-12s | %10s | %12.2f | %12.2f\n", "FOM", "", pc.fom,
              ap.perf.fom);
  std::printf(
      "\nPaper reference: Gain 26.2->25.5 dB, UGF 975->1244 MHz,\n"
      "BW 48.2->69.0 MHz, PM 84.4->78.6 deg; FOM 0.86 -> 0.96.\n"
      "Expected shape: ePlace-AP recovers the failing specs (UGF/BW) at a\n"
      "small cost in the already-passing ones.\n");
  return 0;
}
