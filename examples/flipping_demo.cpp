// Device-flipping demo (paper Fig. 3): two devices whose pins face away
// from each other. The ILP detailed placer decides the flipping binaries
// (Eq. 4d) and pulls the connected pins together.
//
//   $ ./flipping_demo

#include <cstdio>

#include "legal/ilp_detailed.hpp"
#include "netlist/circuit.hpp"

int main() {
  using namespace aplace;

  // Build the Fig. 3 scene: A's pin on its right edge, B's on its left.
  netlist::Circuit c("fig3");
  const DeviceId a = c.add_device("A", netlist::DeviceType::Nmos, 4, 2);
  const DeviceId b = c.add_device("B", netlist::DeviceType::Nmos, 4, 2);
  const PinId pa = c.add_pin(a, "p", {4, 1});
  const PinId pb = c.add_pin(b, "p", {0, 1});
  c.add_net("n", {pa, pb});
  c.finalize();
  (void)pa;
  (void)pb;

  const std::vector<double> start{2, 8, 1, 1};  // side by side

  auto show = [&](const char* tag, const legal::IlpResult& r) {
    const geom::Point qa = r.placement.position(a);
    const geom::Point qb = r.placement.position(b);
    const geom::Orientation oa = r.placement.orientation(a);
    const geom::Orientation ob = r.placement.orientation(b);
    std::printf("%-12s HPWL %.2f um | A at (%.1f, %.1f) %s | B at "
                "(%.1f, %.1f) %s\n",
                tag, r.placement.total_hpwl(), qa.x, qa.y,
                oa.flip_x ? "flipped" : "unflipped", qb.x, qb.y,
                ob.flip_x ? "flipped" : "unflipped");
  };

  legal::IlpOptions with;
  legal::IlpOptions without;
  without.enable_flipping = false;

  std::printf("Fig. 3 scenario: opposite-edge pins, one 2-pin net.\n");
  show("no flipping", legal::IlpDetailedPlacer(c, without).place(start));
  show("flipping", legal::IlpDetailedPlacer(c, with).place(start));
  std::printf("\nFlipping mirrors a device's pins about its center line, so\n"
              "the ILP can abut the connected pins instead of routing across\n"
              "the device (paper Sec. IV-B, constraint 4d).\n");
  return 0;
}
