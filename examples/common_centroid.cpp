// Common-centroid placement demo: a matched current-mirror bank whose four
// mirror devices must form a cross-coupled quad sharing a centroid (the
// classic analog matching pattern; see the paper's related work [7], [8]).
// The ILP detailed placer satisfies the constraint exactly; an SVG render
// of the result is written next to the binary.
//
//   $ ./common_centroid

#include <cstdio>

#include "circuits/builder.hpp"
#include "core/flow.hpp"
#include "io/netlist_io.hpp"
#include "io/svg.hpp"
#include "netlist/evaluator.hpp"

int main() {
  using namespace aplace;
  using netlist::DeviceType;

  circuits::Builder b("cc-mirror-bank");
  // Reference branch and three mirrored outputs; MA1/MA2 and MB1/MB2 are
  // the matched quad (2:1 ratio bank).
  b.mos("MREF", DeviceType::Nmos, 2, 2, "vb", "vb", "gnd");
  b.mos("MA1", DeviceType::Nmos, 2, 2, "vb", "io1", "gnd");
  b.mos("MA2", DeviceType::Nmos, 2, 2, "vb", "io1", "gnd");
  b.mos("MB1", DeviceType::Nmos, 2, 2, "vb", "io2", "gnd");
  b.mos("MB2", DeviceType::Nmos, 2, 2, "vb", "io2", "gnd");
  // Cascodes on the two outputs.
  b.mos("MC1", DeviceType::Nmos, 2, 2, "vcas", "out1", "io1");
  b.mos("MC2", DeviceType::Nmos, 2, 2, "vcas", "out2", "io2");
  b.res("R1", 1, 3, "out1", "vdd");
  b.res("R2", 1, 3, "out2", "vdd");
  b.cap("C1", 2, 2, "out1", "gnd");
  b.cap("C2", 2, 2, "out2", "gnd");
  b.res("RB", 1, 2, "vcas", "vb");
  b.set_critical("io1");
  b.set_critical("io2");
  b.set_weight("gnd", 0.2);
  b.set_weight("vdd", 0.2);
  b.symmetry({{"MC1", "MC2"}, {"R1", "R2"}, {"C1", "C2"}});

  netlist::Circuit circuit = [&]() mutable {
    // Builder::finish() finalizes, so register the quad first through the
    // underlying circuit: rebuild via text is overkill — use a fresh scope.
    return b.finish();
  }();

  // The quad devices were created above; attach the constraint by rebuilding
  // through the netlist API (Builder has no centroid helper on purpose —
  // this demo shows the lower-level Circuit interface too).
  netlist::Circuit c("cc-mirror-bank");
  {
    // Round-trip through the text format, appending the centroid directive.
    const std::string text =
        aplace::io::circuit_to_text(circuit) + "centroid MA1 MA2 MB1 MB2\n";
    Result<netlist::Circuit> parsed = aplace::io::circuit_from_text(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.status().to_string().c_str());
      return 1;
    }
    c = std::move(parsed.value());
  }

  std::printf("Placing %s (%zu devices, common-centroid quad "
              "MA1/MA2 x MB1/MB2)...\n",
              c.name().c_str(), c.num_devices());
  const core::FlowResult r = core::run_eplace_a(c);
  const netlist::QualityReport q = netlist::Evaluator(c).evaluate(r.placement);
  std::printf("area %.1f um^2, HPWL %.1f um, centroid residual %.2e um, %s\n",
              q.area, q.hpwl, q.centroid_violation,
              q.legal() ? "legal" : "ILLEGAL");

  const geom::Point a1 = r.placement.position(c.find_device("MA1"));
  const geom::Point a2 = r.placement.position(c.find_device("MA2"));
  const geom::Point b1 = r.placement.position(c.find_device("MB1"));
  const geom::Point b2 = r.placement.position(c.find_device("MB2"));
  std::printf("quad centers: A (%.1f,%.1f)+(%.1f,%.1f) vs B "
              "(%.1f,%.1f)+(%.1f,%.1f)\n",
              a1.x, a1.y, a2.x, a2.y, b1.x, b1.y, b2.x, b2.y);
  std::printf("shared centroid: (%.2f, %.2f)\n", (a1.x + a2.x) / 2,
              (a1.y + a2.y) / 2);

  io::write_svg(r.placement, "common_centroid.svg");
  std::printf("wrote common_centroid.svg\n");
  return q.legal() ? 0 : 1;
}
