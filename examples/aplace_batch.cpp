// aplace_batch — place many circuits in one shot on the shared thread pool.
//
//   aplace_batch [--circuits A,B,C] [--flows eplace-a,prior,sa]
//                [--threads N] [--budget SECONDS] [--seed N]
//                [--sequential] [--fast]
//                [--journal FILE] [--resume] [--retries N] [--backoff S]
//                [--report-out FILE] [--metrics-out FILE] [--trace-out FILE]
//
// Every {circuit x flow} pair becomes one batch job; core::run_batch fans
// them out over the pool under a single shared Deadline and reports a
// FlowResult per job even when some jobs fail. Defaults: all built-in
// paper testcases, the eplace-a flow, hardware thread count, no budget.
//
// Crash-safe serving: --journal records every job (and its legalized
// placement) to an append-only JSONL journal; re-running with --resume
// restores completed jobs bit-identically instead of re-placing them, so a
// SIGKILLed batch finishes where it left off. SIGINT requests cooperative
// cancellation — in-flight jobs stop at their next watchdog poll and are
// re-run on resume. --retries N re-attempts Diverged/Internal jobs with
// deterministically split seeds and exponential backoff (--backoff seconds),
// then quarantines them. --report-out writes a timing-free result digest
// per job, byte-comparable across interrupted and uninterrupted runs.
//
// Observability: --metrics-out writes the merged process-wide metrics
// registry (counters/gauges/histograms) as JSON; --trace-out writes every
// span the batch produced (job lifecycles plus each flow's stage tree) as a
// Chrome trace_event file for chrome://tracing / Perfetto. Both are empty
// shells when the observability layer is disabled (APLACE_OBS=0).

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/thread_pool.hpp"
#include "circuits/testcases.hpp"
#include "core/batch.hpp"
#include "core/journal.hpp"
#include "io/netlist_io.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace {

using namespace aplace;

// SIGINT handler target. CancelToken::request_cancel is a relaxed atomic
// store, safe from a signal handler; the token must outlive the handler.
core::BatchOptions* g_batch_opts = nullptr;

extern "C" void handle_sigint(int) {
  if (g_batch_opts != nullptr) g_batch_opts->cancel.request_cancel();
}

int usage() {
  std::fprintf(stderr,
               "usage: aplace_batch [--circuits A,B,...] "
               "[--flows eplace-a,prior,sa]\n"
               "                    [--threads N] [--budget SECONDS] "
               "[--seed N]\n"
               "                    [--sequential] [--fast]\n"
               "                    [--journal FILE] [--resume] [--retries N]\n"
               "                    [--backoff SECONDS] [--report-out FILE]\n"
               "                    [--metrics-out FILE] [--trace-out FILE]\n"
               "Circuits are built-in testcase names or .acirc files.\n");
  return 2;
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

bool is_builtin(const std::string& ref) {
  for (const std::string& n : circuits::testcase_names()) {
    if (n == ref) return true;
  }
  return false;
}

/// Timing-free per-job digest: everything that must be bit-identical
/// between an uninterrupted run and a killed-and-resumed one. The placement
/// is folded in through the exact-double serializer, so one changed bit in
/// any coordinate changes the digest.
int write_report(const std::string& path, const core::BatchReport& report) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write report to '%s'\n", path.c_str());
    return 1;
  }
  for (const core::BatchItem& item : report.items) {
    const core::FlowResult& r = item.result;
    const std::uint64_t digest =
        core::fnv1a64(io::placement_to_text(r.placement));
    std::fprintf(f, "%s status=%s quarantined=%d attempts=%d legal=%d "
                    "area=%.17g hpwl=%.17g placement=%016llx\n",
                 item.label.c_str(), to_string(r.status.code()),
                 item.quarantined ? 1 : 0, item.attempts, r.legal() ? 1 : 0,
                 r.area(), r.hpwl(),
                 static_cast<unsigned long long>(digest));
  }
  std::fclose(f);
  return 0;
}

/// Write a whole string to `path`; warns (and returns 1) on failure so the
/// batch result itself is never lost to an unwritable telemetry file.
int write_text(const std::string& path, const std::string& text,
               const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s to '%s'\n", what,
                 path.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return usage();
    key = key.substr(2);
    if (key == "sequential" || key == "fast" || key == "resume") {
      flags[key] = "1";
    } else if (i + 1 < argc) {
      flags[key] = argv[++i];
    } else {
      return usage();
    }
  }

  try {
    std::vector<std::string> names =
        flags.contains("circuits") ? split_list(flags.at("circuits"))
                                   : circuits::testcase_names();
    const std::vector<std::string> flow_names =
        flags.contains("flows") ? split_list(flags.at("flows"))
                                : std::vector<std::string>{"eplace-a"};
    const bool fast = flags.contains("fast");
    const std::uint64_t seed =
        flags.contains("seed") ? std::stoull(flags.at("seed")) : 3;

    if (flags.contains("threads")) {
      base::ThreadPool::set_global_threads(
          static_cast<unsigned>(std::stoul(flags.at("threads"))));
    }

    // Loaded circuits must outlive run_batch; BatchJob holds pointers.
    std::vector<std::unique_ptr<netlist::Circuit>> circuits;
    std::vector<core::BatchJob> jobs;
    for (const std::string& ref : names) {
      if (is_builtin(ref)) {
        circuits.push_back(std::make_unique<netlist::Circuit>(
            circuits::make_testcase(ref).circuit));
      } else {
        Result<netlist::Circuit> loaded = io::read_circuit(ref);
        if (!loaded.ok()) {
          std::fprintf(stderr, "error: %s\n",
                       loaded.status().to_string().c_str());
          return 1;
        }
        circuits.push_back(std::make_unique<netlist::Circuit>(
            std::move(loaded.value())));
      }
      for (const std::string& f : flow_names) {
        core::BatchJob j;
        j.circuit = circuits.back().get();
        j.label = circuits.back()->name() + "/" + f;
        if (f == "eplace-a") {
          j.flow = core::FlowKind::EPlaceA;
          j.eplace.gp.seed = seed;
          if (fast) {
            j.eplace.candidates = 1;
            j.eplace.gp.num_starts = 1;
          }
        } else if (f == "prior") {
          j.flow = core::FlowKind::PriorWork;
          j.prior.gp.seed = seed;
        } else if (f == "sa") {
          j.flow = core::FlowKind::Sa;
          j.sa.sa.seed = seed;
          if (fast) j.sa.sa.max_moves = 20000;
        } else {
          std::fprintf(stderr, "unknown flow '%s'\n", f.c_str());
          return usage();
        }
        jobs.push_back(std::move(j));
      }
    }
    if (jobs.empty()) return usage();

    core::BatchOptions opts;
    if (flags.contains("budget")) {
      opts.time_budget_seconds = std::stod(flags.at("budget"));
    }
    opts.parallel = !flags.contains("sequential");
    if (flags.contains("journal")) opts.journal_path = flags.at("journal");
    opts.resume_journal = flags.contains("resume");
    if (flags.contains("retries")) {
      opts.retry.max_attempts = static_cast<int>(std::stol(flags.at("retries")));
    }
    if (flags.contains("backoff")) {
      opts.retry.backoff_seconds = std::stod(flags.at("backoff"));
    }

    opts.cancel = base::CancelToken::make_cancellable();
    g_batch_opts = &opts;
    std::signal(SIGINT, handle_sigint);

    const core::BatchReport report = core::run_batch(jobs, opts);

    std::signal(SIGINT, SIG_DFL);
    g_batch_opts = nullptr;

    if (!report.journal_status.ok()) {
      std::fprintf(stderr, "warning: journaling disabled: %s\n",
                   report.journal_status.to_string().c_str());
    }

    std::printf("%-22s %10s %10s %7s %8s %4s %s\n", "job", "area", "hpwl",
                "legal", "time(s)", "try", "status");
    std::map<StatusCode, std::size_t> by_status;
    for (const core::BatchItem& item : report.items) {
      const core::FlowResult& r = item.result;
      ++by_status[r.status.code()];
      std::printf("%-22s %10.1f %10.1f %7s %8.2f %4d %s%s%s%s\n",
                  item.label.c_str(), r.area(), r.hpwl(),
                  r.legal() ? "yes" : "NO", item.wall_seconds, item.attempts,
                  r.ok() ? "ok" : to_string(r.status.code()),
                  item.resumed ? " (resumed)" : "",
                  item.quarantined ? " (quarantined)" : "",
                  r.deadline_hit ? " (deadline)" : "");
    }
    std::printf("\n%zu jobs, %zu ok, %zu failed", report.items.size(),
                report.num_ok, report.num_failed());
    if (report.num_resumed > 0) {
      std::printf(" (%zu resumed)", report.num_resumed);
    }
    if (report.num_quarantined > 0) {
      std::printf(" (%zu quarantined)", report.num_quarantined);
    }
    std::printf("; %u threads, %.2f s wall\n",
                base::ThreadPool::global().num_threads(), report.wall_seconds);
    for (const auto& [code, count] : by_status) {
      std::printf("  %-16s %zu\n", to_string(code), count);
    }

    if (flags.contains("report-out")) {
      if (int rc = write_report(flags.at("report-out"), report); rc != 0) {
        return rc;
      }
    }
    if (flags.contains("metrics-out")) {
      const std::string json = obs::MetricsRegistry::global().scrape().to_json(2);
      if (int rc = write_text(flags.at("metrics-out"), json, "metrics");
          rc != 0) {
        return rc;
      }
    }
    if (flags.contains("trace-out")) {
      // Everything the batch produced: job-lifecycle spans still in the
      // collector plus each flow's stage tree (extracted into its
      // FlowResult at the flow boundary).
      std::vector<obs::SpanEvent> events = obs::SpanCollector::global().drain();
      for (const core::BatchItem& item : report.items) {
        events.insert(events.end(), item.result.spans.begin(),
                      item.result.spans.end());
      }
      std::sort(events.begin(), events.end(),
                [](const obs::SpanEvent& a, const obs::SpanEvent& b) {
                  return a.start_seconds < b.start_seconds;
                });
      if (int rc = write_text(flags.at("trace-out"),
                              obs::chrome_trace_json(events), "trace");
          rc != 0) {
        return rc;
      }
    }
    return report.num_failed() == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
