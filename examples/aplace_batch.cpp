// aplace_batch — place many circuits in one shot on the shared thread pool.
//
//   aplace_batch [--circuits A,B,C] [--flows eplace-a,prior,sa]
//                [--threads N] [--budget SECONDS] [--seed N]
//                [--sequential] [--fast]
//
// Every {circuit x flow} pair becomes one batch job; core::run_batch fans
// them out over the pool under a single shared Deadline and reports a
// FlowResult per job even when some jobs fail. Defaults: all built-in
// paper testcases, the eplace-a flow, hardware thread count, no budget.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/thread_pool.hpp"
#include "circuits/testcases.hpp"
#include "core/batch.hpp"
#include "io/netlist_io.hpp"

namespace {

using namespace aplace;

int usage() {
  std::fprintf(stderr,
               "usage: aplace_batch [--circuits A,B,...] "
               "[--flows eplace-a,prior,sa]\n"
               "                    [--threads N] [--budget SECONDS] "
               "[--seed N]\n"
               "                    [--sequential] [--fast]\n"
               "Circuits are built-in testcase names or .acirc files.\n");
  return 2;
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

bool is_builtin(const std::string& ref) {
  for (const std::string& n : circuits::testcase_names()) {
    if (n == ref) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return usage();
    key = key.substr(2);
    if (key == "sequential" || key == "fast") {
      flags[key] = "1";
    } else if (i + 1 < argc) {
      flags[key] = argv[++i];
    } else {
      return usage();
    }
  }

  try {
    std::vector<std::string> names =
        flags.contains("circuits") ? split_list(flags.at("circuits"))
                                   : circuits::testcase_names();
    const std::vector<std::string> flow_names =
        flags.contains("flows") ? split_list(flags.at("flows"))
                                : std::vector<std::string>{"eplace-a"};
    const bool fast = flags.contains("fast");
    const std::uint64_t seed =
        flags.contains("seed") ? std::stoull(flags.at("seed")) : 3;

    if (flags.contains("threads")) {
      base::ThreadPool::set_global_threads(
          static_cast<unsigned>(std::stoul(flags.at("threads"))));
    }

    // Loaded circuits must outlive run_batch; BatchJob holds pointers.
    std::vector<std::unique_ptr<netlist::Circuit>> circuits;
    std::vector<core::BatchJob> jobs;
    for (const std::string& ref : names) {
      circuits.push_back(std::make_unique<netlist::Circuit>(
          is_builtin(ref) ? circuits::make_testcase(ref).circuit
                          : io::read_circuit(ref)));
      for (const std::string& f : flow_names) {
        core::BatchJob j;
        j.circuit = circuits.back().get();
        j.label = circuits.back()->name() + "/" + f;
        if (f == "eplace-a") {
          j.flow = core::FlowKind::EPlaceA;
          j.eplace.gp.seed = seed;
          if (fast) {
            j.eplace.candidates = 1;
            j.eplace.gp.num_starts = 1;
          }
        } else if (f == "prior") {
          j.flow = core::FlowKind::PriorWork;
          j.prior.gp.seed = seed;
        } else if (f == "sa") {
          j.flow = core::FlowKind::Sa;
          j.sa.sa.seed = seed;
          if (fast) j.sa.sa.max_moves = 20000;
        } else {
          std::fprintf(stderr, "unknown flow '%s'\n", f.c_str());
          return usage();
        }
        jobs.push_back(std::move(j));
      }
    }
    if (jobs.empty()) return usage();

    core::BatchOptions opts;
    if (flags.contains("budget")) {
      opts.time_budget_seconds = std::stod(flags.at("budget"));
    }
    opts.parallel = !flags.contains("sequential");

    const core::BatchReport report = core::run_batch(jobs, opts);

    std::printf("%-22s %10s %10s %7s %8s %s\n", "job", "area", "hpwl",
                "legal", "time(s)", "status");
    for (const core::BatchItem& item : report.items) {
      const core::FlowResult& r = item.result;
      std::printf("%-22s %10.1f %10.1f %7s %8.2f %s%s\n", item.label.c_str(),
                  r.area(), r.hpwl(), r.legal() ? "yes" : "NO",
                  item.wall_seconds, r.ok() ? "ok" : "FAILED",
                  r.deadline_hit ? " (deadline)" : "");
    }
    std::printf("\n%zu jobs, %zu ok, %zu failed; %u threads, %.2f s wall\n",
                report.items.size(), report.num_ok, report.num_failed(),
                base::ThreadPool::global().num_threads(),
                report.wall_seconds);
    return report.num_failed() == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
