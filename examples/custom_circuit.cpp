// Building and placing your own circuit with the public API: a two-stage
// Miller opamp assembled with circuits::Builder, with a symmetry group, an
// alignment pair and a monotone ordering, placed by all three engines.
//
//   $ ./custom_circuit

#include <cstdio>

#include "circuits/builder.hpp"
#include "core/flow.hpp"
#include "netlist/evaluator.hpp"

int main() {
  using namespace aplace;
  using netlist::DeviceType;

  // --- describe the circuit ---------------------------------------------------
  circuits::Builder b("my-miller-ota");
  // Input differential pair (to be mirrored about a common axis).
  b.mos("M1", DeviceType::Nmos, 3, 2, "vinp", "d1", "tail");
  b.mos("M2", DeviceType::Nmos, 3, 2, "vinn", "d2", "tail");
  // PMOS mirror load.
  b.mos("M3", DeviceType::Pmos, 2, 2, "d1", "d1", "vdd");
  b.mos("M4", DeviceType::Pmos, 2, 2, "d1", "d2", "vdd");
  // Tail source and bias.
  b.mos("M5", DeviceType::Nmos, 4, 2, "vb", "tail", "gnd");
  b.mos("M6", DeviceType::Nmos, 2, 2, "vb", "vb", "gnd");
  // Output stage with Miller compensation.
  b.mos("M7", DeviceType::Pmos, 3, 2, "d2", "vout", "vdd");
  b.mos("M8", DeviceType::Nmos, 3, 2, "vb", "vout", "gnd");
  b.cap("CC", 3, 2, "d2", "vout");
  b.cap("CL", 3, 3, "vout", "gnd");
  b.cap("CIN1", 1, 1, "vinp", "gnd");
  b.cap("CIN2", 1, 1, "vinn", "gnd");

  b.set_critical("d1");
  b.set_critical("d2");
  b.set_critical("vout");
  b.set_weight("vdd", 0.2);
  b.set_weight("gnd", 0.2);

  // Analog constraints: mirrored pairs + centered tail, aligned caps, and a
  // left-to-right signal path.
  b.symmetry({{"M1", "M2"}, {"M3", "M4"}}, {"M5"});
  b.align(netlist::AlignmentKind::Bottom, "CC", "CL");
  b.order(netlist::OrderDirection::LeftToRight, {"M6", "M7"});

  const netlist::Circuit circuit = b.finish();
  std::printf("Built '%s': %zu devices, %zu nets\n", circuit.name().c_str(),
              circuit.num_devices(), circuit.num_nets());

  // --- place it with each engine -----------------------------------------------
  const netlist::Evaluator ev(circuit);
  auto report = [&](const char* tag, const core::FlowResult& r) {
    const netlist::QualityReport q = ev.evaluate(r.placement);
    std::printf("  %-10s area %6.1f um^2  HPWL %6.1f um  %s (%.2fs)\n", tag,
                q.area, q.hpwl, q.legal() ? "legal" : "ILLEGAL",
                r.total_seconds);
  };
  report("ePlace-A", core::run_eplace_a(circuit));
  report("prior[11]", core::run_prior_work(circuit));
  report("SA", core::run_sa(circuit));

  // --- inspect the winning layout ------------------------------------------------
  const core::FlowResult best = core::run_eplace_a(circuit);
  std::printf("\nePlace-A layout (device centers):\n");
  for (std::size_t i = 0; i < circuit.num_devices(); ++i) {
    const geom::Point p = best.placement.position(DeviceId{i});
    const geom::Orientation o = best.placement.orientation(DeviceId{i});
    std::printf("  %-5s at (%5.1f, %5.1f) %s%s\n",
                circuit.device(DeviceId{i}).name.c_str(), p.x, p.y,
                o.flip_x ? "FX" : "", o.flip_y ? "FY" : "");
  }
  return 0;
}
