// aplace_cli — command-line front end for the library.
//
//   aplace_cli list
//       print the built-in paper testcases
//   aplace_cli export --name CC-OTA --out cc_ota.acirc
//       write a built-in testcase as an .acirc file
//   aplace_cli place --circuit <name | file.acirc> [--method eplace-a|prior|sa]
//              [--out placed.aplc] [--svg layout.svg] [--seed N] [--fast]
//       place a circuit and optionally save the placement / an SVG render
//   aplace_cli eval --circuit <name | file.acirc> --placement placed.aplc
//       evaluate a saved placement (area, HPWL, legality)

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "circuits/testcases.hpp"
#include "core/flow.hpp"
#include "io/netlist_io.hpp"
#include "io/svg.hpp"

namespace {

using namespace aplace;

int usage() {
  std::fprintf(stderr,
               "usage: aplace_cli list\n"
               "       aplace_cli export --name <testcase> --out <file>\n"
               "       aplace_cli place --circuit <name|file.acirc>\n"
               "                  [--method eplace-a|prior|sa] [--out <file>]\n"
               "                  [--svg <file>] [--seed N] [--fast]\n"
               "       aplace_cli eval --circuit <name|file.acirc>\n"
               "                  --placement <file.aplc>\n");
  return 2;
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (key == "fast") {
      flags[key] = "1";
    } else if (i + 1 < argc) {
      flags[key] = argv[++i];
    }
  }
  return flags;
}

bool is_builtin(const std::string& ref) {
  for (const std::string& n : circuits::testcase_names()) {
    if (n == ref) return true;
  }
  return false;
}

Result<netlist::Circuit> load_circuit(const std::string& ref) {
  if (is_builtin(ref)) return circuits::make_testcase(ref).circuit;
  return io::read_circuit(ref);
}

int fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
  return 1;
}

int cmd_list() {
  for (const std::string& n : circuits::testcase_names()) {
    const circuits::TestCase tc = circuits::make_testcase(n);
    std::printf("%-8s  %2zu devices, %2zu nets, %zu symmetry groups\n",
                n.c_str(), tc.circuit.num_devices(), tc.circuit.num_nets(),
                tc.circuit.constraints().symmetry_groups.size());
  }
  return 0;
}

int cmd_export(const std::map<std::string, std::string>& flags) {
  if (!flags.contains("name") || !flags.contains("out")) return usage();
  const Status st = io::write_circuit(
      circuits::make_testcase(flags.at("name")).circuit, flags.at("out"));
  if (!st.ok()) return fail(st);
  std::printf("wrote %s\n", flags.at("out").c_str());
  return 0;
}

int cmd_place(const std::map<std::string, std::string>& flags) {
  if (!flags.contains("circuit")) return usage();
  const Result<netlist::Circuit> loaded = load_circuit(flags.at("circuit"));
  if (!loaded.ok()) return fail(loaded.status());
  const netlist::Circuit& c = loaded.value();
  const std::string method =
      flags.contains("method") ? flags.at("method") : "eplace-a";
  const bool fast = flags.contains("fast");
  const std::uint64_t seed =
      flags.contains("seed") ? std::stoull(flags.at("seed")) : 3;

  core::FlowResult result{.placement = netlist::Placement(c)};
  if (method == "eplace-a") {
    core::EPlaceAOptions opts;
    opts.gp.seed = seed;
    if (fast) {
      opts.candidates = 1;
      opts.gp.num_starts = 1;
    }
    result = core::run_eplace_a(c, opts);
  } else if (method == "prior") {
    core::PriorWorkOptions opts;
    opts.gp.seed = seed;
    result = core::run_prior_work(c, opts);
  } else if (method == "sa") {
    core::SaFlowOptions opts;
    opts.sa.seed = seed;
    if (fast) opts.sa.max_moves = 20000;
    result = core::run_sa(c, opts);
  } else {
    std::fprintf(stderr, "unknown method '%s'\n", method.c_str());
    return usage();
  }

  std::printf("%s placed %s: area %.1f um^2, HPWL %.1f um, %s, %.2f s\n",
              method.c_str(), c.name().c_str(), result.area(), result.hpwl(),
              result.legal() ? "legal" : "ILLEGAL", result.total_seconds);
  if (flags.contains("out")) {
    const Status st = io::write_placement(result.placement, flags.at("out"));
    if (!st.ok()) return fail(st);
    std::printf("wrote %s\n", flags.at("out").c_str());
  }
  if (flags.contains("svg")) {
    io::write_svg(result.placement, flags.at("svg"));
    std::printf("wrote %s\n", flags.at("svg").c_str());
  }
  return result.legal() ? 0 : 1;
}

int cmd_eval(const std::map<std::string, std::string>& flags) {
  if (!flags.contains("circuit") || !flags.contains("placement")) {
    return usage();
  }
  const Result<netlist::Circuit> loaded = load_circuit(flags.at("circuit"));
  if (!loaded.ok()) return fail(loaded.status());
  const netlist::Circuit& c = loaded.value();
  const Result<netlist::Placement> pres =
      io::read_placement(c, flags.at("placement"));
  if (!pres.ok()) return fail(pres.status());
  const netlist::Placement& pl = pres.value();
  const netlist::QualityReport q = netlist::Evaluator(c).evaluate(pl);
  std::printf("area      %.2f um^2\n", q.area);
  std::printf("hpwl      %.2f um\n", q.hpwl);
  std::printf("overlap   %.4f um^2\n", q.overlap_area);
  std::printf("symmetry  %.4f um\n", q.symmetry_violation);
  std::printf("alignment %.4f um\n", q.alignment_violation);
  std::printf("ordering  %.4f um\n", q.ordering_violation);
  std::printf("legal     %s\n", q.legal() ? "yes" : "NO");
  if (!q.legal()) {
    for (const std::string& v : netlist::Evaluator(c).violations(pl)) {
      std::printf("  ! %s\n", v.c_str());
    }
  }
  return q.legal() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const auto flags = parse_flags(argc, argv, 2);
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "export") return cmd_export(flags);
    if (cmd == "place") return cmd_place(flags);
    if (cmd == "eval") return cmd_eval(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
