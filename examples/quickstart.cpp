// Quickstart: place one analog circuit with all three engines and compare.
//
//   $ ./quickstart [circuit-name]        (default CC-OTA)
//
// Demonstrates the core public API: building/fetching a testcase, running
// the ePlace-A, prior-work and simulated-annealing flows, and validating
// the resulting placements.

#include <cstdio>
#include <string>

#include "circuits/testcases.hpp"
#include "core/flow.hpp"

int main(int argc, char** argv) {
  using namespace aplace;
  const std::string name = argc > 1 ? argv[1] : "CC-OTA";
  circuits::TestCase tc = circuits::make_testcase(name);
  const netlist::Circuit& c = tc.circuit;
  std::printf("Circuit %-8s: %zu devices, %zu nets, %zu symmetry groups\n",
              c.name().c_str(), c.num_devices(), c.num_nets(),
              c.constraints().symmetry_groups.size());

  auto report = [&](const char* method, const core::FlowResult& r) {
    std::printf(
        "  %-12s area %8.1f um^2   HPWL %8.1f um   runtime %7.3f s   %s\n",
        method, r.area(), r.hpwl(), r.total_seconds,
        r.legal() ? "legal" : "ILLEGAL");
  };

  report("ePlace-A", core::run_eplace_a(c));
  report("prior[11]", core::run_prior_work(c));
  report("SA", core::run_sa(c));
  return 0;
}
