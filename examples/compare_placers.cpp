// Run all three conventional placement engines across every paper testcase
// and print a compact scoreboard — a smaller, faster cousin of
// bench_table3_main for interactive use.
//
//   $ ./compare_placers [--fast]

#include <cstdio>
#include <cstring>

#include "circuits/testcases.hpp"
#include "core/flow.hpp"

int main(int argc, char** argv) {
  using namespace aplace;
  const bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;

  std::printf("%-8s | %19s | %19s | %19s\n", "design", "SA  (area/hpwl/s)",
              "prior[11]", "ePlace-A");
  double wins_area = 0, wins_hpwl = 0, n_rows = 0;
  for (const std::string& name : circuits::testcase_names()) {
    circuits::TestCase tc = circuits::make_testcase(name);
    const netlist::Circuit& c = tc.circuit;

    core::SaFlowOptions so;
    if (fast) so.sa.max_moves = 15000;
    const core::FlowResult sa = core::run_sa(c, so);
    const core::FlowResult pw = core::run_prior_work(c);
    core::EPlaceAOptions eo;
    if (fast) {
      eo.candidates = 1;
      eo.gp.num_starts = 1;
    }
    const core::FlowResult ep = core::run_eplace_a(c, eo);

    std::printf(
        "%-8s | %6.1f %6.1f %4.2f | %6.1f %6.1f %4.2f | %6.1f %6.1f %4.2f\n",
        name.c_str(), sa.area(), sa.hpwl(), sa.total_seconds, pw.area(),
        pw.hpwl(), pw.total_seconds, ep.area(), ep.hpwl(), ep.total_seconds);
    std::fflush(stdout);
    n_rows += 1;
    if (ep.area() <= sa.area() && ep.area() <= pw.area()) wins_area += 1;
    if (ep.hpwl() <= sa.hpwl() && ep.hpwl() <= pw.hpwl()) wins_hpwl += 1;
  }
  std::printf("\nePlace-A best-or-tied on area in %.0f/%.0f designs, "
              "on HPWL in %.0f/%.0f designs.\n",
              wins_area, n_rows, wins_hpwl, n_rows);
  return 0;
}
