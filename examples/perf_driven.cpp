// Performance-driven placement walkthrough (paper Sec. V):
//   1. generate a labeled placement dataset with the surrogate simulator,
//   2. train the GNN performance model,
//   3. run ePlace-AP (GNN gradient descent through the placement),
//   4. compare routed surrogate metrics against conventional ePlace-A.
//
//   $ ./perf_driven [circuit-name]        (default CC-OTA)

#include <cstdio>
#include <string>

#include "circuits/testcases.hpp"
#include "core/perf_flow.hpp"

int main(int argc, char** argv) {
  using namespace aplace;
  const std::string name = argc > 1 ? argv[1] : "CC-OTA";
  circuits::TestCase tc = circuits::make_testcase(name);
  const netlist::Circuit& c = tc.circuit;

  std::printf("Building performance context for %s...\n", name.c_str());
  core::DatasetOptions dopts;
  dopts.random_samples = 400;
  dopts.optimized_samples = 40;
  dopts.analytic_samples = 40;
  auto ctx = core::build_perf_context(c, tc.spec, dopts);
  std::printf("  dataset label threshold (FOM): %.3f\n", ctx->label_threshold);
  std::printf("  GNN accuracy: train %.2f / validation %.2f\n",
              ctx->training.train_accuracy,
              ctx->training.validation_accuracy);

  std::printf("\nConventional ePlace-A:\n");
  const core::FlowResult conv = core::run_eplace_a(c);
  const perf::PerformanceResult pconv =
      core::evaluate_routed(*ctx, conv.placement);
  std::printf("  area %.1f um^2, HPWL %.1f um, FOM %.3f, GNN phi %.3f\n",
              conv.area(), conv.hpwl(), pconv.fom,
              core::gnn_phi(*ctx, conv.placement));

  std::printf("\nPerformance-driven ePlace-AP:\n");
  const core::PerfFlowResult ap = core::run_eplace_ap(c, *ctx);
  std::printf("  area %.1f um^2, HPWL %.1f um, FOM %.3f, GNN phi %.3f\n",
              ap.flow.area(), ap.flow.hpwl(), ap.perf.fom,
              core::gnn_phi(*ctx, ap.flow.placement));

  std::printf("\nPer-metric detail (ePlace-A -> ePlace-AP):\n");
  for (std::size_t m = 0; m < pconv.metrics.size(); ++m) {
    std::printf("  %-14s %8.1f (%3.0f%%)  ->  %8.1f (%3.0f%%)   spec %.1f\n",
                pconv.metrics[m].name.c_str(), pconv.metrics[m].value,
                100 * pconv.metrics[m].normalized, ap.perf.metrics[m].value,
                100 * ap.perf.metrics[m].normalized, pconv.metrics[m].spec);
  }
  return 0;
}
