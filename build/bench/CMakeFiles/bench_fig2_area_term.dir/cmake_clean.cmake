file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_area_term.dir/bench_fig2_area_term.cpp.o"
  "CMakeFiles/bench_fig2_area_term.dir/bench_fig2_area_term.cpp.o.d"
  "bench_fig2_area_term"
  "bench_fig2_area_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_area_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
