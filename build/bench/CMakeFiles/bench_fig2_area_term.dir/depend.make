# Empty dependencies file for bench_fig2_area_term.
# This may be replaced when dependencies are built.
