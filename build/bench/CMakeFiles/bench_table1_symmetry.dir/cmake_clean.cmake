file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_symmetry.dir/bench_table1_symmetry.cpp.o"
  "CMakeFiles/bench_table1_symmetry.dir/bench_table1_symmetry.cpp.o.d"
  "bench_table1_symmetry"
  "bench_table1_symmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_symmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
