file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_perf.dir/bench_table7_perf.cpp.o"
  "CMakeFiles/bench_table7_perf.dir/bench_table7_perf.cpp.o.d"
  "bench_table7_perf"
  "bench_table7_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
