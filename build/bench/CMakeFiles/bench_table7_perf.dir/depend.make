# Empty dependencies file for bench_table7_perf.
# This may be replaced when dependencies are built.
