# Empty compiler generated dependencies file for bench_table4_detailed.
# This may be replaced when dependencies are built.
