file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_detailed.dir/bench_table4_detailed.cpp.o"
  "CMakeFiles/bench_table4_detailed.dir/bench_table4_detailed.cpp.o.d"
  "bench_table4_detailed"
  "bench_table4_detailed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_detailed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
