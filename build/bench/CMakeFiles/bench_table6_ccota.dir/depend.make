# Empty dependencies file for bench_table6_ccota.
# This may be replaced when dependencies are built.
