file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_ccota.dir/bench_table6_ccota.cpp.o"
  "CMakeFiles/bench_table6_ccota.dir/bench_table6_ccota.cpp.o.d"
  "bench_table6_ccota"
  "bench_table6_ccota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_ccota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
