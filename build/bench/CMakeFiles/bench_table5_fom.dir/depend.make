# Empty dependencies file for bench_table5_fom.
# This may be replaced when dependencies are built.
