file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_fom.dir/bench_table5_fom.cpp.o"
  "CMakeFiles/bench_table5_fom.dir/bench_table5_fom.cpp.o.d"
  "bench_table5_fom"
  "bench_table5_fom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
