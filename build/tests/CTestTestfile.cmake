# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/circuits_test[1]_include.cmake")
include("/root/repo/build/tests/density_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/gnn_test[1]_include.cmake")
include("/root/repo/build/tests/legal_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/numeric_test[1]_include.cmake")
include("/root/repo/build/tests/route_perf_test[1]_include.cmake")
include("/root/repo/build/tests/sa_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/wirelength_test[1]_include.cmake")
include("/root/repo/build/tests/gp_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/centroid_test[1]_include.cmake")
include("/root/repo/build/tests/bstar_test[1]_include.cmake")
