file(REMOVE_RECURSE
  "CMakeFiles/route_perf_test.dir/route_perf_test.cpp.o"
  "CMakeFiles/route_perf_test.dir/route_perf_test.cpp.o.d"
  "route_perf_test"
  "route_perf_test.pdb"
  "route_perf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_perf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
