# Empty compiler generated dependencies file for centroid_test.
# This may be replaced when dependencies are built.
