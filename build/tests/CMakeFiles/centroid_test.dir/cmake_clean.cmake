file(REMOVE_RECURSE
  "CMakeFiles/centroid_test.dir/centroid_test.cpp.o"
  "CMakeFiles/centroid_test.dir/centroid_test.cpp.o.d"
  "centroid_test"
  "centroid_test.pdb"
  "centroid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centroid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
