file(REMOVE_RECURSE
  "CMakeFiles/wirelength_test.dir/wirelength_test.cpp.o"
  "CMakeFiles/wirelength_test.dir/wirelength_test.cpp.o.d"
  "wirelength_test"
  "wirelength_test.pdb"
  "wirelength_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wirelength_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
