# Empty dependencies file for wirelength_test.
# This may be replaced when dependencies are built.
