file(REMOVE_RECURSE
  "CMakeFiles/bstar_test.dir/bstar_test.cpp.o"
  "CMakeFiles/bstar_test.dir/bstar_test.cpp.o.d"
  "bstar_test"
  "bstar_test.pdb"
  "bstar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bstar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
