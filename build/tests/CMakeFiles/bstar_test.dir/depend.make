# Empty dependencies file for bstar_test.
# This may be replaced when dependencies are built.
