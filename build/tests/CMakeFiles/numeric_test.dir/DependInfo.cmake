
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/numeric_test.cpp" "tests/CMakeFiles/numeric_test.dir/numeric_test.cpp.o" "gcc" "tests/CMakeFiles/numeric_test.dir/numeric_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aplace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/aplace_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/aplace_io.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/aplace_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/density/CMakeFiles/aplace_density.dir/DependInfo.cmake"
  "/root/repo/build/src/wirelength/CMakeFiles/aplace_wirelength.dir/DependInfo.cmake"
  "/root/repo/build/src/legal/CMakeFiles/aplace_legal.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/aplace_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/sa/CMakeFiles/aplace_sa.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/aplace_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/aplace_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/aplace_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/aplace_route.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/aplace_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/aplace_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/aplace_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
