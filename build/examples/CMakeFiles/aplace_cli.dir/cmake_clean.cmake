file(REMOVE_RECURSE
  "CMakeFiles/aplace_cli.dir/aplace_cli.cpp.o"
  "CMakeFiles/aplace_cli.dir/aplace_cli.cpp.o.d"
  "aplace_cli"
  "aplace_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aplace_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
