# Empty dependencies file for aplace_cli.
# This may be replaced when dependencies are built.
