# Empty compiler generated dependencies file for common_centroid.
# This may be replaced when dependencies are built.
