file(REMOVE_RECURSE
  "CMakeFiles/common_centroid.dir/common_centroid.cpp.o"
  "CMakeFiles/common_centroid.dir/common_centroid.cpp.o.d"
  "common_centroid"
  "common_centroid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_centroid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
