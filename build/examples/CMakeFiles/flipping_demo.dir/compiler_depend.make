# Empty compiler generated dependencies file for flipping_demo.
# This may be replaced when dependencies are built.
