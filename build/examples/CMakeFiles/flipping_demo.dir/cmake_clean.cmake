file(REMOVE_RECURSE
  "CMakeFiles/flipping_demo.dir/flipping_demo.cpp.o"
  "CMakeFiles/flipping_demo.dir/flipping_demo.cpp.o.d"
  "flipping_demo"
  "flipping_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flipping_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
