file(REMOVE_RECURSE
  "CMakeFiles/perf_driven.dir/perf_driven.cpp.o"
  "CMakeFiles/perf_driven.dir/perf_driven.cpp.o.d"
  "perf_driven"
  "perf_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
