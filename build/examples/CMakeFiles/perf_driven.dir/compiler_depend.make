# Empty compiler generated dependencies file for perf_driven.
# This may be replaced when dependencies are built.
