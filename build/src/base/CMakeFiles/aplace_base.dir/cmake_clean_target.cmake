file(REMOVE_RECURSE
  "libaplace_base.a"
)
