file(REMOVE_RECURSE
  "CMakeFiles/aplace_base.dir/base.cpp.o"
  "CMakeFiles/aplace_base.dir/base.cpp.o.d"
  "libaplace_base.a"
  "libaplace_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aplace_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
