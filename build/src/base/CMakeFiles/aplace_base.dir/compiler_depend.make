# Empty compiler generated dependencies file for aplace_base.
# This may be replaced when dependencies are built.
