# Empty dependencies file for aplace_gnn.
# This may be replaced when dependencies are built.
