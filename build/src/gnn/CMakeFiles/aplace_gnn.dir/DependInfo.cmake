
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnn/graph.cpp" "src/gnn/CMakeFiles/aplace_gnn.dir/graph.cpp.o" "gcc" "src/gnn/CMakeFiles/aplace_gnn.dir/graph.cpp.o.d"
  "/root/repo/src/gnn/model.cpp" "src/gnn/CMakeFiles/aplace_gnn.dir/model.cpp.o" "gcc" "src/gnn/CMakeFiles/aplace_gnn.dir/model.cpp.o.d"
  "/root/repo/src/gnn/trainer.cpp" "src/gnn/CMakeFiles/aplace_gnn.dir/trainer.cpp.o" "gcc" "src/gnn/CMakeFiles/aplace_gnn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/aplace_base.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/aplace_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/aplace_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/aplace_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
