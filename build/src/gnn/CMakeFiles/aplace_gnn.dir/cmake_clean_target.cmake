file(REMOVE_RECURSE
  "libaplace_gnn.a"
)
