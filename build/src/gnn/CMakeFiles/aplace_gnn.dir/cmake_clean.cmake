file(REMOVE_RECURSE
  "CMakeFiles/aplace_gnn.dir/graph.cpp.o"
  "CMakeFiles/aplace_gnn.dir/graph.cpp.o.d"
  "CMakeFiles/aplace_gnn.dir/model.cpp.o"
  "CMakeFiles/aplace_gnn.dir/model.cpp.o.d"
  "CMakeFiles/aplace_gnn.dir/trainer.cpp.o"
  "CMakeFiles/aplace_gnn.dir/trainer.cpp.o.d"
  "libaplace_gnn.a"
  "libaplace_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aplace_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
