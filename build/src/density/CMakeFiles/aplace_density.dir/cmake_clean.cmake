file(REMOVE_RECURSE
  "CMakeFiles/aplace_density.dir/bell.cpp.o"
  "CMakeFiles/aplace_density.dir/bell.cpp.o.d"
  "CMakeFiles/aplace_density.dir/bin_grid.cpp.o"
  "CMakeFiles/aplace_density.dir/bin_grid.cpp.o.d"
  "CMakeFiles/aplace_density.dir/electro.cpp.o"
  "CMakeFiles/aplace_density.dir/electro.cpp.o.d"
  "libaplace_density.a"
  "libaplace_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aplace_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
