# Empty compiler generated dependencies file for aplace_density.
# This may be replaced when dependencies are built.
