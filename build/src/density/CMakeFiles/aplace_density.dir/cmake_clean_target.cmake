file(REMOVE_RECURSE
  "libaplace_density.a"
)
