file(REMOVE_RECURSE
  "CMakeFiles/aplace_numeric.dir/cg.cpp.o"
  "CMakeFiles/aplace_numeric.dir/cg.cpp.o.d"
  "CMakeFiles/aplace_numeric.dir/nesterov.cpp.o"
  "CMakeFiles/aplace_numeric.dir/nesterov.cpp.o.d"
  "CMakeFiles/aplace_numeric.dir/spectral.cpp.o"
  "CMakeFiles/aplace_numeric.dir/spectral.cpp.o.d"
  "libaplace_numeric.a"
  "libaplace_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aplace_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
