
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/cg.cpp" "src/numeric/CMakeFiles/aplace_numeric.dir/cg.cpp.o" "gcc" "src/numeric/CMakeFiles/aplace_numeric.dir/cg.cpp.o.d"
  "/root/repo/src/numeric/nesterov.cpp" "src/numeric/CMakeFiles/aplace_numeric.dir/nesterov.cpp.o" "gcc" "src/numeric/CMakeFiles/aplace_numeric.dir/nesterov.cpp.o.d"
  "/root/repo/src/numeric/spectral.cpp" "src/numeric/CMakeFiles/aplace_numeric.dir/spectral.cpp.o" "gcc" "src/numeric/CMakeFiles/aplace_numeric.dir/spectral.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/aplace_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
