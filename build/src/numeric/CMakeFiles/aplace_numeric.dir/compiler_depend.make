# Empty compiler generated dependencies file for aplace_numeric.
# This may be replaced when dependencies are built.
