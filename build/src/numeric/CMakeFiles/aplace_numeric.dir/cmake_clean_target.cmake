file(REMOVE_RECURSE
  "libaplace_numeric.a"
)
