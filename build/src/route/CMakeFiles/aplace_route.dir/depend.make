# Empty dependencies file for aplace_route.
# This may be replaced when dependencies are built.
