file(REMOVE_RECURSE
  "libaplace_route.a"
)
