file(REMOVE_RECURSE
  "CMakeFiles/aplace_route.dir/router.cpp.o"
  "CMakeFiles/aplace_route.dir/router.cpp.o.d"
  "libaplace_route.a"
  "libaplace_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aplace_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
