
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/circuit.cpp" "src/netlist/CMakeFiles/aplace_netlist.dir/circuit.cpp.o" "gcc" "src/netlist/CMakeFiles/aplace_netlist.dir/circuit.cpp.o.d"
  "/root/repo/src/netlist/evaluator.cpp" "src/netlist/CMakeFiles/aplace_netlist.dir/evaluator.cpp.o" "gcc" "src/netlist/CMakeFiles/aplace_netlist.dir/evaluator.cpp.o.d"
  "/root/repo/src/netlist/placement.cpp" "src/netlist/CMakeFiles/aplace_netlist.dir/placement.cpp.o" "gcc" "src/netlist/CMakeFiles/aplace_netlist.dir/placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/aplace_base.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/aplace_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
