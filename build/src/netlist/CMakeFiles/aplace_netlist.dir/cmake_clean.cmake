file(REMOVE_RECURSE
  "CMakeFiles/aplace_netlist.dir/circuit.cpp.o"
  "CMakeFiles/aplace_netlist.dir/circuit.cpp.o.d"
  "CMakeFiles/aplace_netlist.dir/evaluator.cpp.o"
  "CMakeFiles/aplace_netlist.dir/evaluator.cpp.o.d"
  "CMakeFiles/aplace_netlist.dir/placement.cpp.o"
  "CMakeFiles/aplace_netlist.dir/placement.cpp.o.d"
  "libaplace_netlist.a"
  "libaplace_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aplace_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
