file(REMOVE_RECURSE
  "libaplace_netlist.a"
)
