# Empty dependencies file for aplace_netlist.
# This may be replaced when dependencies are built.
