# Empty dependencies file for aplace_circuits.
# This may be replaced when dependencies are built.
