file(REMOVE_RECURSE
  "CMakeFiles/aplace_circuits.dir/builder.cpp.o"
  "CMakeFiles/aplace_circuits.dir/builder.cpp.o.d"
  "CMakeFiles/aplace_circuits.dir/comparator.cpp.o"
  "CMakeFiles/aplace_circuits.dir/comparator.cpp.o.d"
  "CMakeFiles/aplace_circuits.dir/misc.cpp.o"
  "CMakeFiles/aplace_circuits.dir/misc.cpp.o.d"
  "CMakeFiles/aplace_circuits.dir/ota.cpp.o"
  "CMakeFiles/aplace_circuits.dir/ota.cpp.o.d"
  "CMakeFiles/aplace_circuits.dir/registry.cpp.o"
  "CMakeFiles/aplace_circuits.dir/registry.cpp.o.d"
  "CMakeFiles/aplace_circuits.dir/vco.cpp.o"
  "CMakeFiles/aplace_circuits.dir/vco.cpp.o.d"
  "libaplace_circuits.a"
  "libaplace_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aplace_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
