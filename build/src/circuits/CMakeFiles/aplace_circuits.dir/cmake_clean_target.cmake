file(REMOVE_RECURSE
  "libaplace_circuits.a"
)
