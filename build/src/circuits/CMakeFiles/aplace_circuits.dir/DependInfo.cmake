
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuits/builder.cpp" "src/circuits/CMakeFiles/aplace_circuits.dir/builder.cpp.o" "gcc" "src/circuits/CMakeFiles/aplace_circuits.dir/builder.cpp.o.d"
  "/root/repo/src/circuits/comparator.cpp" "src/circuits/CMakeFiles/aplace_circuits.dir/comparator.cpp.o" "gcc" "src/circuits/CMakeFiles/aplace_circuits.dir/comparator.cpp.o.d"
  "/root/repo/src/circuits/misc.cpp" "src/circuits/CMakeFiles/aplace_circuits.dir/misc.cpp.o" "gcc" "src/circuits/CMakeFiles/aplace_circuits.dir/misc.cpp.o.d"
  "/root/repo/src/circuits/ota.cpp" "src/circuits/CMakeFiles/aplace_circuits.dir/ota.cpp.o" "gcc" "src/circuits/CMakeFiles/aplace_circuits.dir/ota.cpp.o.d"
  "/root/repo/src/circuits/registry.cpp" "src/circuits/CMakeFiles/aplace_circuits.dir/registry.cpp.o" "gcc" "src/circuits/CMakeFiles/aplace_circuits.dir/registry.cpp.o.d"
  "/root/repo/src/circuits/vco.cpp" "src/circuits/CMakeFiles/aplace_circuits.dir/vco.cpp.o" "gcc" "src/circuits/CMakeFiles/aplace_circuits.dir/vco.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/aplace_base.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/aplace_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/aplace_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/aplace_route.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/aplace_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
