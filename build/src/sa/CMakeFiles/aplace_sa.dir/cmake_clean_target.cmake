file(REMOVE_RECURSE
  "libaplace_sa.a"
)
