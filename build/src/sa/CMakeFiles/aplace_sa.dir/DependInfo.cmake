
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sa/annealer.cpp" "src/sa/CMakeFiles/aplace_sa.dir/annealer.cpp.o" "gcc" "src/sa/CMakeFiles/aplace_sa.dir/annealer.cpp.o.d"
  "/root/repo/src/sa/bstar_placer.cpp" "src/sa/CMakeFiles/aplace_sa.dir/bstar_placer.cpp.o" "gcc" "src/sa/CMakeFiles/aplace_sa.dir/bstar_placer.cpp.o.d"
  "/root/repo/src/sa/bstar_tree.cpp" "src/sa/CMakeFiles/aplace_sa.dir/bstar_tree.cpp.o" "gcc" "src/sa/CMakeFiles/aplace_sa.dir/bstar_tree.cpp.o.d"
  "/root/repo/src/sa/island.cpp" "src/sa/CMakeFiles/aplace_sa.dir/island.cpp.o" "gcc" "src/sa/CMakeFiles/aplace_sa.dir/island.cpp.o.d"
  "/root/repo/src/sa/sequence_pair.cpp" "src/sa/CMakeFiles/aplace_sa.dir/sequence_pair.cpp.o" "gcc" "src/sa/CMakeFiles/aplace_sa.dir/sequence_pair.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/aplace_base.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/aplace_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/aplace_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/aplace_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
