# Empty dependencies file for aplace_sa.
# This may be replaced when dependencies are built.
