file(REMOVE_RECURSE
  "CMakeFiles/aplace_sa.dir/annealer.cpp.o"
  "CMakeFiles/aplace_sa.dir/annealer.cpp.o.d"
  "CMakeFiles/aplace_sa.dir/bstar_placer.cpp.o"
  "CMakeFiles/aplace_sa.dir/bstar_placer.cpp.o.d"
  "CMakeFiles/aplace_sa.dir/bstar_tree.cpp.o"
  "CMakeFiles/aplace_sa.dir/bstar_tree.cpp.o.d"
  "CMakeFiles/aplace_sa.dir/island.cpp.o"
  "CMakeFiles/aplace_sa.dir/island.cpp.o.d"
  "CMakeFiles/aplace_sa.dir/sequence_pair.cpp.o"
  "CMakeFiles/aplace_sa.dir/sequence_pair.cpp.o.d"
  "libaplace_sa.a"
  "libaplace_sa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aplace_sa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
