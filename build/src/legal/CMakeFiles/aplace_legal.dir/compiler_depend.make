# Empty compiler generated dependencies file for aplace_legal.
# This may be replaced when dependencies are built.
