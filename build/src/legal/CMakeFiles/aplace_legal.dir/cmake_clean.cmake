file(REMOVE_RECURSE
  "CMakeFiles/aplace_legal.dir/ilp_detailed.cpp.o"
  "CMakeFiles/aplace_legal.dir/ilp_detailed.cpp.o.d"
  "CMakeFiles/aplace_legal.dir/relative_order.cpp.o"
  "CMakeFiles/aplace_legal.dir/relative_order.cpp.o.d"
  "CMakeFiles/aplace_legal.dir/two_stage_lp.cpp.o"
  "CMakeFiles/aplace_legal.dir/two_stage_lp.cpp.o.d"
  "libaplace_legal.a"
  "libaplace_legal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aplace_legal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
