file(REMOVE_RECURSE
  "libaplace_legal.a"
)
