
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/legal/ilp_detailed.cpp" "src/legal/CMakeFiles/aplace_legal.dir/ilp_detailed.cpp.o" "gcc" "src/legal/CMakeFiles/aplace_legal.dir/ilp_detailed.cpp.o.d"
  "/root/repo/src/legal/relative_order.cpp" "src/legal/CMakeFiles/aplace_legal.dir/relative_order.cpp.o" "gcc" "src/legal/CMakeFiles/aplace_legal.dir/relative_order.cpp.o.d"
  "/root/repo/src/legal/two_stage_lp.cpp" "src/legal/CMakeFiles/aplace_legal.dir/two_stage_lp.cpp.o" "gcc" "src/legal/CMakeFiles/aplace_legal.dir/two_stage_lp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/aplace_base.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/aplace_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/aplace_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/aplace_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
