file(REMOVE_RECURSE
  "libaplace_solver.a"
)
