file(REMOVE_RECURSE
  "CMakeFiles/aplace_solver.dir/lp.cpp.o"
  "CMakeFiles/aplace_solver.dir/lp.cpp.o.d"
  "CMakeFiles/aplace_solver.dir/milp.cpp.o"
  "CMakeFiles/aplace_solver.dir/milp.cpp.o.d"
  "libaplace_solver.a"
  "libaplace_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aplace_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
