# Empty compiler generated dependencies file for aplace_solver.
# This may be replaced when dependencies are built.
