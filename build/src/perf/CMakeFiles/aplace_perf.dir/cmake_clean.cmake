file(REMOVE_RECURSE
  "CMakeFiles/aplace_perf.dir/model.cpp.o"
  "CMakeFiles/aplace_perf.dir/model.cpp.o.d"
  "CMakeFiles/aplace_perf.dir/spec.cpp.o"
  "CMakeFiles/aplace_perf.dir/spec.cpp.o.d"
  "libaplace_perf.a"
  "libaplace_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aplace_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
