file(REMOVE_RECURSE
  "libaplace_perf.a"
)
