# Empty compiler generated dependencies file for aplace_perf.
# This may be replaced when dependencies are built.
