file(REMOVE_RECURSE
  "CMakeFiles/aplace_core.dir/flow.cpp.o"
  "CMakeFiles/aplace_core.dir/flow.cpp.o.d"
  "CMakeFiles/aplace_core.dir/perf_flow.cpp.o"
  "CMakeFiles/aplace_core.dir/perf_flow.cpp.o.d"
  "libaplace_core.a"
  "libaplace_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aplace_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
