# Empty dependencies file for aplace_core.
# This may be replaced when dependencies are built.
