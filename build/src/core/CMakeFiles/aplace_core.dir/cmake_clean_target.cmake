file(REMOVE_RECURSE
  "libaplace_core.a"
)
