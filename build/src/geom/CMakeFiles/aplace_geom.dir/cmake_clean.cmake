file(REMOVE_RECURSE
  "CMakeFiles/aplace_geom.dir/geom.cpp.o"
  "CMakeFiles/aplace_geom.dir/geom.cpp.o.d"
  "libaplace_geom.a"
  "libaplace_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aplace_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
