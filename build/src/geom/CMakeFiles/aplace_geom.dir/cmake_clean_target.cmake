file(REMOVE_RECURSE
  "libaplace_geom.a"
)
