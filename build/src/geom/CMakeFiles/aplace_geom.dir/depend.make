# Empty dependencies file for aplace_geom.
# This may be replaced when dependencies are built.
