# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("geom")
subdirs("netlist")
subdirs("numeric")
subdirs("solver")
subdirs("wirelength")
subdirs("density")
subdirs("sa")
subdirs("route")
subdirs("perf")
subdirs("gnn")
subdirs("io")
subdirs("circuits")
subdirs("gp")
subdirs("legal")
subdirs("core")
