# Empty dependencies file for aplace_io.
# This may be replaced when dependencies are built.
