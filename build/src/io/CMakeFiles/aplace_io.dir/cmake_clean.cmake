file(REMOVE_RECURSE
  "CMakeFiles/aplace_io.dir/netlist_io.cpp.o"
  "CMakeFiles/aplace_io.dir/netlist_io.cpp.o.d"
  "CMakeFiles/aplace_io.dir/svg.cpp.o"
  "CMakeFiles/aplace_io.dir/svg.cpp.o.d"
  "libaplace_io.a"
  "libaplace_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aplace_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
