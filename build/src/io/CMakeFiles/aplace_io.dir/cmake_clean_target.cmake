file(REMOVE_RECURSE
  "libaplace_io.a"
)
