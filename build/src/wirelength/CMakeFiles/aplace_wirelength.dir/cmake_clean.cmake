file(REMOVE_RECURSE
  "CMakeFiles/aplace_wirelength.dir/area_term.cpp.o"
  "CMakeFiles/aplace_wirelength.dir/area_term.cpp.o.d"
  "CMakeFiles/aplace_wirelength.dir/smooth_wl.cpp.o"
  "CMakeFiles/aplace_wirelength.dir/smooth_wl.cpp.o.d"
  "libaplace_wirelength.a"
  "libaplace_wirelength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aplace_wirelength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
