file(REMOVE_RECURSE
  "libaplace_wirelength.a"
)
