
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wirelength/area_term.cpp" "src/wirelength/CMakeFiles/aplace_wirelength.dir/area_term.cpp.o" "gcc" "src/wirelength/CMakeFiles/aplace_wirelength.dir/area_term.cpp.o.d"
  "/root/repo/src/wirelength/smooth_wl.cpp" "src/wirelength/CMakeFiles/aplace_wirelength.dir/smooth_wl.cpp.o" "gcc" "src/wirelength/CMakeFiles/aplace_wirelength.dir/smooth_wl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/aplace_base.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/aplace_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/aplace_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/aplace_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
