# Empty dependencies file for aplace_wirelength.
# This may be replaced when dependencies are built.
