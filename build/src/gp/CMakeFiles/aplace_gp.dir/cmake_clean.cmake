file(REMOVE_RECURSE
  "CMakeFiles/aplace_gp.dir/eplace_gp.cpp.o"
  "CMakeFiles/aplace_gp.dir/eplace_gp.cpp.o.d"
  "CMakeFiles/aplace_gp.dir/ntu_gp.cpp.o"
  "CMakeFiles/aplace_gp.dir/ntu_gp.cpp.o.d"
  "CMakeFiles/aplace_gp.dir/penalties.cpp.o"
  "CMakeFiles/aplace_gp.dir/penalties.cpp.o.d"
  "libaplace_gp.a"
  "libaplace_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aplace_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
