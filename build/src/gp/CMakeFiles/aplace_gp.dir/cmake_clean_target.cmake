file(REMOVE_RECURSE
  "libaplace_gp.a"
)
