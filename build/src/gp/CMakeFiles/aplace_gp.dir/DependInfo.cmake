
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gp/eplace_gp.cpp" "src/gp/CMakeFiles/aplace_gp.dir/eplace_gp.cpp.o" "gcc" "src/gp/CMakeFiles/aplace_gp.dir/eplace_gp.cpp.o.d"
  "/root/repo/src/gp/ntu_gp.cpp" "src/gp/CMakeFiles/aplace_gp.dir/ntu_gp.cpp.o" "gcc" "src/gp/CMakeFiles/aplace_gp.dir/ntu_gp.cpp.o.d"
  "/root/repo/src/gp/penalties.cpp" "src/gp/CMakeFiles/aplace_gp.dir/penalties.cpp.o" "gcc" "src/gp/CMakeFiles/aplace_gp.dir/penalties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/aplace_base.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/aplace_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/aplace_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/aplace_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/density/CMakeFiles/aplace_density.dir/DependInfo.cmake"
  "/root/repo/build/src/wirelength/CMakeFiles/aplace_wirelength.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
