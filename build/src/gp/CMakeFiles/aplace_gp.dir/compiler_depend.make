# Empty compiler generated dependencies file for aplace_gp.
# This may be replaced when dependencies are built.
